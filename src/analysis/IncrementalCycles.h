//===- analysis/IncrementalCycles.h - Online IDG cycle detection -*- C++ -*-===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Incremental online cycle detection over the IDG (DESIGN.md §12). Instead
/// of batching Tarjan passes that freeze every IDG stripe, the detector
/// maintains a topological order of the condensation of the live+finished
/// transaction graph under edge insertion, Pearce–Kelly style:
///
///  * every transaction gets a monotonically increasing order key at
///    creation (new nodes are maximal, so the intra-thread chain is free);
///  * a cross edge u→v with ord(u) < ord(v) is consistent — O(1), no
///    traversal, no stripe beyond the two the edge writer already holds;
///  * an inconsistent edge triggers a bounded two-way search of the
///    affected region (forward from v over keys ≤ ord(u), backward from u
///    over keys ≥ ord(v)). If the searches meet, the edge closed a cycle:
///    the meeting vertices are exactly the new SCC, which is merged into
///    one condensation vertex (IcdGroup) so later searches cross it in one
///    step. Either way the region's keys are permuted — backward frontier
///    below, merged component in the middle, forward frontier on top — to
///    restore order consistency.
///
/// Claiming mirrors the batched pass's exactly-once discipline: a confirmed
/// component is handed to PCD by the *last member to finish* (retire()),
/// which is the same instant a batched pass could first have claimed it, so
/// the two modes blame identical method sets on identical schedules. The
/// caller executes claims (pinning, degradation checks, PCD hand-off)
/// outside the detector lock.
///
/// Soundness valve (the Bender-style dense-end bound): when an affected
/// region exceeds Options::MaxRegion, the detector stops reordering that
/// neighbourhood. The region collapses into one poisoned "oversized" group
/// that absorbs — via undirected closure — everything an edge ever connects
/// to it, and every absorbed transaction is reported as a Potential
/// violation (Pcd::reportPotential path). Order consistency among
/// non-absorbed vertices is preserved (deleting vertices from a DAG cannot
/// invalidate a topological order), and any future cycle that touches the
/// poisoned region has all its members absorbed and reported, so no
/// violation is lost — precision degrades, soundness does not.
///
/// Locking: one internal spin lock, strictly *after* IDG stripes in the
/// acquisition order (edge writers hold ≤ 2 stripes, the collector holds
/// all of them; the detector never takes a stripe). The per-transaction
/// hot path never touches it: key assignment (addNode) is a relaxed
/// fetch-add, and the program-order edge (addChainEdge) is two atomic
/// pointer stores — consistent by construction because the new vertex's
/// key is maximal. Only cross edges (addEdge), retirement, collection,
/// and finalize take the lock; the remaining Transaction::Icd* scratch
/// fields are guarded by it. The collector unlinks
/// doomed nodes (removeNodes) while it still holds every stripe and before
/// it frees anything, so the detector never sees a dangling node: a swept
/// transaction is unreachable and finished, hence can never appear on a
/// future cycle, and dropping it cannot invalidate the remaining order.
///
//===----------------------------------------------------------------------===//

#ifndef DC_ANALYSIS_INCREMENTALCYCLES_H
#define DC_ANALYSIS_INCREMENTALCYCLES_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "analysis/Transaction.h"
#include "support/SpinLock.h"
#include "support/Statistic.h"

namespace dc {
namespace analysis {

/// A condensation vertex: the members of one confirmed (or poisoned) SCC,
/// sharing a single order key and visit stamp. Guarded by the detector's
/// internal lock.
struct IcdGroup {
  std::vector<Transaction *> Members;
  uint64_t Ord = 0;
  uint64_t Epoch = 0;   ///< Visit stamp shared by all members.
  uint32_t Unretired = 0;
  size_t RegIdx = 0;    ///< Position in the detector's registry.
  bool Claimed = false; ///< Handed to the PCD path (or poisoned).
  bool Oversized = false;
};

class IncrementalCycleDetector {
public:
  struct Options {
    /// Affected-region cap: searches visiting more vertices than this stop
    /// reordering and degrade the region to Potential reports. The default
    /// is far beyond any region a bounded live graph can produce; tests
    /// shrink it to force the valve.
    uint32_t MaxRegion = 1u << 20;
  };

  /// One component the caller must hand to the PCD/refinement path. The
  /// detector has already pinned every member (Transaction::Pins), exactly
  /// like the batched pass pins before releasing the stripes; the caller
  /// unpins with release order when it is done with the members' logs.
  struct Claim {
    std::vector<Transaction *> Members;
    /// Poisoned-region absorption (only the newly absorbed transactions):
    /// report Potential, never replay.
    bool Oversized = false;
  };
  using ClaimList = std::vector<Claim>;

  explicit IncrementalCycleDetector(const Options &O) : Opts(O) {}
  ~IncrementalCycleDetector();

  IncrementalCycleDetector(const IncrementalCycleDetector &) = delete;
  IncrementalCycleDetector &
  operator=(const IncrementalCycleDetector &) = delete;

  /// Registers a new transaction as a maximal vertex. Called at
  /// transaction creation (the caller holds the owner's stripe; any stripe
  /// set composes with the internal lock).
  void addNode(Transaction *Tx);

  /// Observes an IDG edge (intra or cross). The caller holds the stripes
  /// it already holds for the IDG append — the detector takes none. Only
  /// Oversized claims can be produced here (a cycle's precise claim always
  /// waits for retire(), because an edge's target is unfinished).
  void addEdge(Transaction *Src, Transaction *Dst, ClaimList &Out);

  /// Observes the program-order edge \p Prev → \p Tx at \p Tx's creation —
  /// the per-transaction hot path, and entirely lock-free: \p Tx just
  /// received a maximal order key (addNode), so the edge is consistent by
  /// construction, and the chain pointer publishes with release order
  /// under the owner's stripe. If \p Prev's region is poisoned the
  /// contact is repaired lazily — the first search that reaches the
  /// poisoned group through the chain absorbs the toucher (soundness is
  /// preserved because pruning at a poisoned group now implies
  /// absorption, never a silently missed path).
  void addChainEdge(Transaction *Prev, Transaction *Tx);

  /// Observes a transaction's end. Must be called with *no* stripes held:
  /// a produced precise Claim is executed by the caller right after, and
  /// that execution may block (PCD queue backpressure).
  void retire(Transaction *Tx, ClaimList &Out);

  /// Unlinks doomed transactions before the collector frees them. Must be
  /// called under all stripes (collectNow), before any free. An unclaimed
  /// component can never be doomed — some member is unretired, hence still
  /// a thread's CurrTx (a strong root), and the members are mutually
  /// reachable through Out edges the mark phase follows.
  void removeNodes(const std::vector<Transaction *> &Doomed);

  /// End-of-run sweep: claims any complete-but-unclaimed components. With
  /// every transaction retired through the normal path this finds nothing;
  /// it exists so shutdown is sound even if a future caller forgets a
  /// retire. Counted in icd.finalize_claims (expected 0).
  void finalize(ClaimList &Out);

  /// Adds the detector's counters to the run's registry (endRun).
  void flushStats(StatisticRegistry &Stats);

  /// Test hook: invoked (under the detector lock) on every reorder with
  /// the affected-region vertex count. The stripe-locality test asserts
  /// from inside the hook that the reordering thread holds at most the two
  /// stripes of the edge it is inserting.
  void setReorderHook(std::function<void(size_t)> Hook) {
    ReorderHook = std::move(Hook);
  }

private:
  Transaction *repOf(Transaction *Tx) const {
    return Tx->IcdG && !Tx->IcdG->Members.empty() ? Tx->IcdG->Members.front()
                                                  : Tx;
  }
  bool sameVertex(const Transaction *A, const Transaction *B) const {
    return A == B || (A->IcdG != nullptr && A->IcdG == B->IcdG);
  }
  uint64_t ordOf(const Transaction *Tx) const {
    return Tx->IcdG ? Tx->IcdG->Ord : Tx->IcdOrd;
  }
  uint64_t &stampOf(Transaction *Tx) {
    return Tx->IcdG ? Tx->IcdG->Epoch : Tx->IcdEpoch;
  }
  void setOrd(Transaction *Tx, uint64_t Ord) {
    if (Tx->IcdG)
      Tx->IcdG->Ord = Ord;
    else
      Tx->IcdOrd = Ord;
  }

  void claimGroup(IcdGroup *G, ClaimList &Out);
  void registerGroup(IcdGroup *G);
  void unregisterGroup(IcdGroup *G);
  /// Slow path for an inconsistent edge: two-way search, reorder, merge.
  void insertInconsistent(Transaction *Src, Transaction *Dst, ClaimList &Out);
  /// Absorbs the undirected closure of \p Seeds into oversized group \p G,
  /// reporting the newly absorbed transactions as one Oversized claim.
  void absorbInto(IcdGroup *G, const std::vector<Transaction *> &Seeds,
                  ClaimList &Out);

  /// Takes Mu, charging any contention to the lock-wait counters: a failed
  /// tryLock means some other edge writer / the retire path holds the
  /// detector, and the blocked interval is exactly the serialization the
  /// scaling bench wants to see. Uncontended acquisitions stay one CAS.
  class TimedGuard {
  public:
    explicit TimedGuard(IncrementalCycleDetector &D) : D(D) { D.lockMu(); }
    ~TimedGuard() { D.Mu.unlock(); }
    TimedGuard(const TimedGuard &) = delete;
    TimedGuard &operator=(const TimedGuard &) = delete;

  private:
    IncrementalCycleDetector &D;
  };
  void lockMu();

  Options Opts;
  SpinLock Mu;
  /// Outside Mu: key assignment is a relaxed fetch-add so transaction
  /// creation (addNode) never touches the detector lock. Monotonicity is
  /// all addNode needs — a new node is maximal under any interleaving,
  /// because every existing key was drawn earlier and reorders only
  /// permute keys already drawn (all below any fresh one).
  std::atomic<uint64_t> NextOrd{1};
  uint64_t VisitClock = 0;
  std::vector<IcdGroup *> Groups;
  std::function<void(size_t)> ReorderHook;

  // Counters (under Mu except the atomics), flushed at endRun.
  std::atomic<uint64_t> ChainEdges{0}; ///< Lock-free program-order links.
  /// Contended acquisitions of Mu and the nanoseconds spent blocked in
  /// them (outside Mu: charged before the lock is held). The detector is
  /// the one shared serialization point the sharded-IDG design left in the
  /// cross-edge path, so these are the first numbers to read when
  /// bench/scaling_threads stops scaling.
  std::atomic<uint64_t> LockWaits{0};
  std::atomic<uint64_t> LockWaitNs{0};
  uint64_t NumEdges = 0;       ///< Edges observed (intra + cross).
  uint64_t NumFastEdges = 0;   ///< Order-consistent: no traversal at all.
  uint64_t NumReorders = 0;    ///< Inconsistent edges that ran the search.
  uint64_t ReorderVisited = 0; ///< Total affected-region vertices.
  uint64_t RegionMax = 0;      ///< Largest single affected region.
  uint64_t NumCycles = 0;      ///< Components confirmed incrementally.
  uint64_t CapDegrades = 0;    ///< Oversized absorption batches.
  uint64_t FinalizeClaims = 0; ///< Leftovers claimed at finalize (want 0).
};

} // namespace analysis
} // namespace dc

#endif // DC_ANALYSIS_INCREMENTALCYCLES_H
