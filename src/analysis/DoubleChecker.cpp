//===- analysis/DoubleChecker.cpp -----------------------------------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/DoubleChecker.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

using namespace dc;
using namespace dc::analysis;

namespace {

/// Holder id the background collector uses for stripe acquisition (never a
/// program thread id).
constexpr uint32_t HolderCollector = 0xFFFFFFFEu;

/// The program thread currently executing on this OS thread; every checker
/// hook stores it on entry. Octet listener callbacks run inside some hook
/// (a barrier, a safe-point poll, or a blocked-state operation), so this
/// identifies which thread's cache a stripe handoff would miss in.
thread_local uint32_t TlsPhysTid = StripedLockSet::NoHolder;

uint32_t physTid(uint32_t Fallback) {
  return TlsPhysTid == StripedLockSet::NoHolder ? Fallback : TlsPhysTid;
}

/// Ids are (thread, per-thread counter) compositions so allocation needs no
/// global synchronization. Uniqueness within a run is all the analysis
/// needs: nothing orders by id (OrderClock stamps do the ordering).
uint64_t composeId(uint32_t Tid, uint64_t Seq) {
  return (static_cast<uint64_t>(Tid + 1) << 40) | Seq;
}

/// Elision cell packing: tid (16 bits) | wasWrite (1) | ts (47).
uint64_t packCell(uint32_t Tid, bool WasWrite, uint64_t Ts) {
  return (static_cast<uint64_t>(Tid) << 48) |
         (static_cast<uint64_t>(WasWrite) << 47) |
         (Ts & ((1ULL << 47) - 1));
}
uint32_t cellTid(uint64_t Cell) { return static_cast<uint32_t>(Cell >> 48); }
bool cellWasWrite(uint64_t Cell) { return (Cell >> 47) & 1; }
uint64_t cellTs(uint64_t Cell) { return Cell & ((1ULL << 47) - 1); }

} // namespace

//===----------------------------------------------------------------------===//
// Parallel-PCD worker pool
//===----------------------------------------------------------------------===//

/// Bounded multi-worker pool for PCD replays (parallel-PCD extension, §5.3
/// future work). SCCs are independent once detected: members are finished
/// (immutable logs) and pinned by the detecting thread before enqueue; the
/// worker that replays an SCC releases its members' pins. processScc keeps
/// no state across calls, so workers replay distinct SCCs concurrently.
class DoubleCheckerRuntime::PcdPool {
public:
  PcdPool(PreciseCycleDetector &Pcd, StatisticRegistry &Stats,
          uint32_t NumWorkers, uint32_t MaxDepth)
      : Pcd(Pcd), MaxDepth(std::max(1u, MaxDepth)),
        SccsQueued(Stats.get("pcd.sccs_queued")),
        QueueWaitNs(Stats.get("pcd.queue_wait_ns")),
        MaxQueueDepth(Stats.get("pcd.max_queue_depth")) {
    Workers.reserve(std::max(1u, NumWorkers));
    for (uint32_t I = 0; I < std::max(1u, NumWorkers); ++I)
      Workers.emplace_back([this] { run(); });
  }

  ~PcdPool() {
    {
      std::lock_guard<std::mutex> L(M);
      Stop = true;
    }
    HasWork.notify_all();
    NotFull.notify_all();
    for (std::thread &W : Workers)
      W.join(); // Workers drain the remaining queue before exiting.
  }

  /// Enqueues one detection pass's SCCs (members already pinned by the
  /// caller; a worker releases the pins after replay). Blocks while the
  /// queue is at its bound (backpressure on the detecting thread). Safe to
  /// block here: callers hold no IDG stripe and workers never take one.
  /// One notify per woken worker for the whole batch, not one per SCC:
  /// a woken worker drains everything it can see, so per-SCC signalling
  /// only adds futex traffic and wake/sleep churn.
  void enqueueBatch(std::vector<std::vector<Transaction *>> Sccs) {
    const auto Now = std::chrono::steady_clock::now();
    size_t Queued = 0;
    {
      std::unique_lock<std::mutex> L(M);
      for (std::vector<Transaction *> &Members : Sccs) {
        NotFull.wait(L, [this] { return Queue.size() < MaxDepth || Stop; });
        Queue.push_back(Item{std::move(Members), Now});
        ++Queued;
        SccsQueued.add(1);
        MaxQueueDepth.updateMax(Queue.size());
      }
    }
    for (size_t I = std::min(Queued, Workers.size()); I-- > 0;)
      HasWork.notify_one();
  }

  /// Blocks until every queued SCC has been fully replayed.
  void drain() {
    std::unique_lock<std::mutex> L(M);
    Idle.wait(L, [this] { return Queue.empty() && Active == 0; });
  }

private:
  struct Item {
    std::vector<Transaction *> Members;
    std::chrono::steady_clock::time_point Enqueued;
  };

  void run() {
    std::unique_lock<std::mutex> L(M);
    for (;;) {
      HasWork.wait(L, [this] { return Stop || !Queue.empty(); });
      if (Queue.empty()) {
        if (Stop)
          return;
        continue;
      }
      Item It = std::move(Queue.front());
      Queue.pop_front();
      ++Active;
      L.unlock();
      NotFull.notify_one();
      QueueWaitNs.add(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - It.Enqueued)
              .count()));
      Pcd.processScc(It.Members);
      for (Transaction *Tx : It.Members)
        Tx->Pins.fetch_sub(1, std::memory_order_release);
      L.lock();
      --Active;
      if (Queue.empty() && Active == 0)
        Idle.notify_all();
    }
  }

  PreciseCycleDetector &Pcd;
  const uint32_t MaxDepth;
  Statistic &SccsQueued;
  Statistic &QueueWaitNs;
  Statistic &MaxQueueDepth;

  std::mutex M;
  std::condition_variable HasWork;
  std::condition_variable NotFull;
  std::condition_variable Idle;
  std::deque<Item> Queue;
  uint32_t Active = 0;
  bool Stop = false;
  std::vector<std::thread> Workers;
};

//===----------------------------------------------------------------------===//
// Background transaction collector
//===----------------------------------------------------------------------===//

/// Runs mark-sweep passes off the critical path. Triggers from
/// endCurrentTx only bump a request counter; pending requests coalesce
/// into one pass (a pass sweeps everything currently unreachable, so a
/// coalesced pass frees no less than the passes it replaces).
class DoubleCheckerRuntime::TxCollector {
public:
  explicit TxCollector(DoubleCheckerRuntime &DC) : DC(DC) {
    Worker = std::thread([this] { run(); });
  }

  ~TxCollector() {
    {
      std::lock_guard<std::mutex> L(M);
      Stop = true;
    }
    CV.notify_all();
    Worker.join();
  }

  void request() {
    {
      std::lock_guard<std::mutex> L(M);
      ++Requested;
    }
    CV.notify_one();
  }

  /// Blocks until every request made before the call has been served.
  void drain() {
    std::unique_lock<std::mutex> L(M);
    const uint64_t Target = Requested;
    Done.wait(L, [&] { return Completed >= Target; });
  }

private:
  void run() {
    std::unique_lock<std::mutex> L(M);
    for (;;) {
      CV.wait(L, [this] { return Stop || Completed < Requested; });
      if (Completed >= Requested && Stop)
        return;
      const uint64_t Target = Requested; // Coalesce pending requests.
      L.unlock();
      DC.collectNow(HolderCollector);
      L.lock();
      Completed = Target;
      Done.notify_all();
    }
  }

  DoubleCheckerRuntime &DC;
  std::mutex M;
  std::condition_variable CV;
  std::condition_variable Done;
  uint64_t Requested = 0;
  uint64_t Completed = 0;
  bool Stop = false;
  std::thread Worker;
};

//===----------------------------------------------------------------------===//
// Construction / run lifecycle
//===----------------------------------------------------------------------===//

DoubleCheckerRuntime::DoubleCheckerRuntime(const ir::Program &P,
                                           DoubleCheckerOptions Opts,
                                           ViolationLog &Violations,
                                           StatisticRegistry &Stats)
    : P(P), Opts(Opts), Violations(Violations), Stats(Stats) {
  if (Opts.PcdOnly) {
    this->Opts.LogAccesses = true;
    this->Opts.RunPcd = false;
    // The persistent precise state pins transactions; never sweep.
    this->Opts.CollectEveryTx = ~0u;
    PcdOnlyAnalysis = std::make_unique<OnlinePcd>(Violations, Stats);
    return;
  }
  if (Opts.RunPcd) {
    PreciseCycleDetector::Options PcdOpts;
    PcdOpts.MaxSccTxs = Opts.MaxSccTxsForPcd;
    Pcd = std::make_unique<PreciseCycleDetector>(Violations, Stats, PcdOpts);
  }
}

DoubleCheckerRuntime::~DoubleCheckerRuntime() {
  // Stop the PCD pool before freeing the transactions it may still be
  // replaying, and the collector before tearing down the stripes it locks.
  AsyncPcd.reset();
  Collector.reset();
  for (uint32_t T = 0; T < NumThreads; ++T)
    for (Transaction *Tx : Threads[T].Owned)
      delete Tx;
}

void DoubleCheckerRuntime::beginRun(rt::Runtime &RT) {
  NumThreads = RT.numThreads();
  Threads = std::make_unique<PerThread[]>(NumThreads);
  // Stripe 0 is the global stripe (gLastRdSh); Tid+1 is thread Tid's.
  NumShards = Opts.SerializedIdg ? 1 : NumThreads + 1;
  IdgShards = std::make_unique<StripedLockSet>(NumShards);
  Octet = std::make_unique<octet::OctetManager>(
      RT.heap(), NumThreads, this, Stats, &RT.abortFlag());
  if (Opts.ParallelPcd && Pcd)
    AsyncPcd = std::make_unique<PcdPool>(*Pcd, Stats, Opts.PcdWorkers,
                                         Opts.PcdQueueDepth);
  // SerializedIdg keeps the pre-sharding behaviour: collection runs inline
  // on the triggering thread. CollectEveryTx == ~0u (PcdOnly) never
  // triggers, so the collector thread would sit idle.
  if (!Opts.SerializedIdg && Opts.CollectEveryTx != ~0u)
    Collector = std::make_unique<TxCollector>(*this);
  if (Opts.LogAccesses) {
    if (Opts.LegacyLog) {
      ElisionCells = std::vector<std::atomic<uint64_t>>(
          RT.heap().numFieldAddrs());
      CellContended = std::vector<std::atomic<uint8_t>>(
          RT.heap().numFieldAddrs());
    } else {
      for (uint32_t T = 0; T < NumThreads; ++T)
        Threads[T].ChunkCache.attach(&ChunkPool);
    }
  }
}

void DoubleCheckerRuntime::endRun(rt::Runtime &RT) {
  // Flush detection roots still short of a full batch (every transaction
  // is finished now, so this finds any remaining cycles), then drain the
  // deferred machinery that pass may have fed.
  sccPass(HolderCollector);
  if (AsyncPcd)
    AsyncPcd->drain();
  if (Collector)
    Collector->drain();
  Octet->flushStatistics();
  uint64_t Regular = 0, Unary = 0, AccR = 0, AccU = 0, LogN = 0, LogE = 0;
  uint64_t Bytes = 0;
  for (uint32_t T = 0; T < NumThreads; ++T) {
    const PerThread &PT = Threads[T];
    Regular += PT.RegularTxs;
    Unary += PT.UnaryTxs;
    AccR += PT.AccRegular;
    AccU += PT.AccUnary;
    LogN += PT.LogEntries;
    LogE += PT.LogElided;
    // On the arena path access appends don't bump BytesLogged inline (the
    // hot path carries no byte accounting; one slot per entry is implied)
    // — only EdgeIn markers do. The legacy path accounts every append.
    Bytes += PT.BytesLogged +
             (Opts.LegacyLog ? 0 : PT.LogEntries * sizeof(LogSlot));
  }
  Stats.get("icd.regular_transactions").add(Regular);
  Stats.get("icd.unary_transactions").add(Unary);
  Stats.get("icd.instrumented_accesses_regular").add(AccR);
  Stats.get("icd.instrumented_accesses_unary").add(AccU);
  Stats.get("icd.log_entries").add(LogN);
  Stats.get("icd.log_entries_elided").add(LogE);
  Stats.get("logging.bytes_logged").add(Bytes);
  if (!Opts.LegacyLog) {
    Stats.get("logging.filter_hits").add(LogE);
    Stats.get("logging.chunk_allocs").add(ChunkPool.chunkAllocs());
    Stats.get("logging.chunk_recycles").add(ChunkPool.chunkRecycles());
  }
  Stats.get("icd.idg_cross_edges")
      .add(CrossEdges.load(std::memory_order_relaxed));
  Stats.get("icd.sccs").add(SccCount.load(std::memory_order_relaxed));
  Stats.get("icd.collector_runs")
      .add(CollectorRuns.load(std::memory_order_relaxed));
  Stats.get("icd.collector_ns")
      .add(CollectorNs.load(std::memory_order_relaxed));
  Stats.get("icd.txs_swept").add(TxsSwept.load(std::memory_order_relaxed));
  Stats.get("icd.collector_live")
      .updateMax(CollectorLiveMax.load(std::memory_order_relaxed));
  Stats.get("icd.idg_shards").updateMax(NumShards);
  Stats.get("icd.idg_lock_handoffs").add(IdgShards->totalHandoffs());
}

//===----------------------------------------------------------------------===//
// Stripe helpers
//===----------------------------------------------------------------------===//

void DoubleCheckerRuntime::lockShard(uint32_t S, uint32_t Holder) {
  if (IdgShards->lock(S, Holder) && Opts.IdgRemoteMissPenalty != 0)
    spinPenalty(Opts.IdgRemoteMissPenalty,
                (static_cast<uint64_t>(S) << 32) | Holder);
}

void DoubleCheckerRuntime::lockShards(const uint32_t *Shards, unsigned N,
                                      uint32_t Holder) {
  // Batched acquisition pays at most one remote-miss penalty: the stripes'
  // cache lines are independent, so on real hardware their coherence
  // transfers overlap (memory-level parallelism) instead of forming the
  // serial dependence chain spinPenalty models. Per-stripe handoffs are
  // still counted individually for the icd.idg_lock_handoffs statistic.
  bool AnyHandoff = false;
  for (unsigned I = 0; I < N; ++I)
    AnyHandoff |= IdgShards->lock(Shards[I], Holder);
  if (AnyHandoff && Opts.IdgRemoteMissPenalty != 0)
    spinPenalty(Opts.IdgRemoteMissPenalty, Holder);
}

void DoubleCheckerRuntime::lockAllShards(uint32_t Holder) {
  // Same memory-level-parallelism batching as lockShards, over every stripe.
  bool AnyHandoff = false;
  for (uint32_t S = 0; S < NumShards; ++S)
    AnyHandoff |= IdgShards->lock(S, Holder);
  if (AnyHandoff && Opts.IdgRemoteMissPenalty != 0)
    spinPenalty(Opts.IdgRemoteMissPenalty, Holder);
}

void DoubleCheckerRuntime::unlockAllShards() {
  for (uint32_t S = NumShards; S-- > 0;)
    unlockShard(S);
}

void DoubleCheckerRuntime::spinPenalty(uint32_t Iters, uint64_t Seed) {
  uint64_t Acc = Seed;
  for (uint32_t I = 0; I < Iters; ++I)
    Acc = Acc * 6364136223846793005ULL + 1442695040888963407ULL;
  PenaltySink.fetch_add(Acc, std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Checker hooks
//===----------------------------------------------------------------------===//

void DoubleCheckerRuntime::threadStarted(rt::ThreadContext &TC) {
  TlsPhysTid = TC.Tid;
  Octet->threadStarted(TC.Tid);
  const uint32_t S = shardOf(TC.Tid);
  lockShard(S, TC.Tid);
  newTransactionLocked(TC.Tid, ir::InvalidMethodId, /*Regular=*/false);
  unlockShard(S);
}

void DoubleCheckerRuntime::threadExiting(rt::ThreadContext &TC) {
  TlsPhysTid = TC.Tid;
  endCurrentTx(TC.Tid);
  // CurrTx intentionally stays on the (finished) final transaction: a
  // conflicting transition can still name this thread as its responder
  // (its objects keep their WrEx/RdEx states after exit), and the edge
  // source must then be the thread's last transaction — nulling it here
  // would silently drop those edges.
  Octet->threadExited(TC.Tid);
}

void DoubleCheckerRuntime::txBegin(rt::ThreadContext &TC,
                                   const ir::Method &M) {
  TlsPhysTid = TC.Tid;
  endCurrentTx(TC.Tid);
  const uint32_t S = shardOf(TC.Tid);
  lockShard(S, TC.Tid);
  newTransactionLocked(TC.Tid, P.originalOf(M.Id), /*Regular=*/true);
  unlockShard(S);
}

void DoubleCheckerRuntime::txEnd(rt::ThreadContext &TC, const ir::Method &M) {
  // §4: at method end, a new unary transaction begins.
  TlsPhysTid = TC.Tid;
  endCurrentTx(TC.Tid);
  const uint32_t S = shardOf(TC.Tid);
  lockShard(S, TC.Tid);
  newTransactionLocked(TC.Tid, ir::InvalidMethodId, /*Regular=*/false);
  unlockShard(S);
}

Transaction *DoubleCheckerRuntime::currentForAccess(rt::ThreadContext &TC,
                                                    PerThread &PT) {
  Transaction *Cur = PT.CurrTx.load(std::memory_order_relaxed);
  assert(Cur && "access outside any transaction context");
  if (Cur->Regular || !Cur->Interrupted.load(std::memory_order_relaxed))
    return Cur;
  // The merged unary transaction was interrupted by a cross-thread edge;
  // end it and start a fresh one (§4's merge optimization boundary).
  endCurrentTx(TC.Tid);
  const uint32_t S = shardOf(TC.Tid);
  lockShard(S, TC.Tid);
  Transaction *Fresh = newTransactionLocked(TC.Tid, ir::InvalidMethodId,
                                            /*Regular=*/false);
  unlockShard(S);
  return Fresh;
}

void DoubleCheckerRuntime::instrumentedAccess(rt::ThreadContext &TC,
                                              const rt::AccessInfo &Info,
                                              function_ref<void()> Access) {
  TlsPhysTid = TC.Tid;
  PerThread &PT = Threads[TC.Tid];
  Transaction *Cur = currentForAccess(TC, PT);
  if (Info.Flags & ir::IF_OctetBarrier) {
    if (Info.IsWrite)
      Octet->writeBarrier(TC, Info.Obj);
    else
      Octet->readBarrier(TC, Info.Obj);
  }
  Access();
  if (Opts.LogAccesses && (Info.Flags & ir::IF_LogAccess))
    logAccess(TC, PT, Cur, Info);
  if (Cur->Regular)
    ++PT.AccRegular;
  else
    ++PT.AccUnary;
}

void DoubleCheckerRuntime::logAccess(rt::ThreadContext &TC, PerThread &PT,
                                     Transaction *Cur,
                                     const rt::AccessInfo &Info) {
  const uint64_t MyTs = PT.CurTs.load(std::memory_order_relaxed);
  if (!Opts.LegacyLog) {
    // Default path (DESIGN.md §8): thread-local filter, chunked arena.
    // The only shared-visible write is the LogLen publication, and chunks
    // come from the thread's cache — zero shared writes beyond that, zero
    // allocations in steady state.
    if (Opts.ElideDuplicates &&
        PT.Filter.testAndSet(ElisionFilter::key(Info.Obj, Info.Addr), MyTs,
                             Info.IsWrite)) {
      // Duplicate with no intervening edge or transaction boundary: elide.
      ++PT.LogElided;
      return;
    }
    Cur->LogLen.store(
        Cur->Log.appendAccess(Info.Obj, Info.Addr, Info.IsWrite,
                              &PT.ChunkCache),
        std::memory_order_release);
    ++PT.LogEntries; // Byte accounting is derived at flush: 1 slot/entry.
    return;
  }
  // Legacy path (LegacyLog): globally shared elision cells and a
  // reallocating vector log, with the remote-miss simulation the shared
  // cells warrant.
  std::atomic<uint64_t> &CellA = ElisionCells[Info.Addr];
  uint64_t Cell = CellA.load(std::memory_order_relaxed);
  if (Opts.ElideDuplicates && cellTid(Cell) == TC.Tid &&
      cellTs(Cell) == MyTs && (cellWasWrite(Cell) || !Info.IsWrite)) {
    ++PT.LogElided;
    return;
  }
  LogEntry E;
  E.K = Info.IsWrite ? LogEntry::Kind::Write : LogEntry::Kind::Read;
  E.Obj = Info.Obj;
  E.Addr = Info.Addr;
  Cur->appendLogLegacy(E);
  ++PT.LogEntries;
  PT.BytesLogged += sizeof(LogEntry);
  if (Opts.LogRemoteMissPenalty != 0) {
    // Remote-miss simulation for the elision cell rewrite (see
    // DoubleCheckerOptions::LogRemoteMissPenalty).
    if (Cell != 0 && cellTid(Cell) != TC.Tid)
      CellContended[Info.Addr].store(1, std::memory_order_relaxed);
    if (CellContended[Info.Addr].load(std::memory_order_relaxed))
      spinPenalty(Opts.LogRemoteMissPenalty, Info.Addr);
  }
  CellA.store(packCell(TC.Tid, Info.IsWrite, MyTs),
              std::memory_order_relaxed);
}

void DoubleCheckerRuntime::syncOp(rt::ThreadContext &TC,
                                  const rt::AccessInfo &Info,
                                  rt::SyncKind Kind) {
  if (Info.Flags == ir::IF_None)
    return;
  // Acquire-like ops behave as reads, release-like as writes, on the
  // synchronized object (already encoded in Info by the runtime).
  instrumentedAccess(TC, Info, [] {});
}

void DoubleCheckerRuntime::safePoint(rt::ThreadContext &TC) {
  TlsPhysTid = TC.Tid;
  Octet->pollSafePoint(TC.Tid);
}

void DoubleCheckerRuntime::aboutToBlock(rt::ThreadContext &TC) {
  TlsPhysTid = TC.Tid;
  Octet->aboutToBlock(TC.Tid);
}

void DoubleCheckerRuntime::unblocked(rt::ThreadContext &TC) {
  TlsPhysTid = TC.Tid;
  Octet->unblocked(TC.Tid);
}

//===----------------------------------------------------------------------===//
// Octet listener: Figure 4 edge creation
//===----------------------------------------------------------------------===//

void DoubleCheckerRuntime::onConflictingEdge(uint32_t RespTid,
                                             const octet::Transition &T) {
  // Runs on the responder (explicit protocol) or the requester holding the
  // blocked responder (implicit); both threads' current transactions are
  // stable for the duration (see OctetListener's contract).
  const uint32_t Phys = physTid(T.Requester);
  uint32_t A = shardOf(RespTid);
  uint32_t B = shardOf(T.Requester);
  if (A > B)
    std::swap(A, B);
  uint32_t Need[2] = {A, B};
  const unsigned N = B != A ? 2 : 1;
  lockShards(Need, N, Phys);
  addCrossEdgeLocked(Threads[RespTid].CurrTx.load(std::memory_order_relaxed),
                     Threads[T.Requester].CurrTx.load(
                         std::memory_order_relaxed),
                     Phys);
  for (unsigned I = N; I-- > 0;)
    unlockShard(Need[I]);
}

void DoubleCheckerRuntime::onBecameRdEx(uint32_t Tid) {
  // Always runs on thread Tid itself (the thread claiming RdEx ownership).
  const uint32_t S = shardOf(Tid);
  lockShard(S, physTid(Tid));
  Threads[Tid].LastRdEx = Threads[Tid].CurrTx.load(std::memory_order_relaxed);
  unlockShard(S);
}

void DoubleCheckerRuntime::onUpgradeToRdSh(uint32_t Tid, uint32_t OldOwner,
                                           uint64_t Counter) {
  const uint32_t Phys = physTid(Tid);
  // Stripe 0 pins gLastRdSh's identity; the remaining stripes are only
  // known after reading it, and are all ranked above stripe 0, so the
  // ascending lock order is preserved.
  lockShard(0, Phys);
  Transaction *Rd = GLastRdSh;
  uint32_t Need[3] = {0, 0, 0};
  unsigned N = 0;
  auto Add = [&](uint32_t S) {
    if (S == 0)
      return; // Already held (always the case under SerializedIdg).
    for (unsigned I = 0; I < N; ++I)
      if (Need[I] == S)
        return;
    Need[N++] = S;
  };
  Add(shardOf(OldOwner));
  Add(shardOf(Tid));
  if (Rd != nullptr)
    Add(shardOf(Rd->Tid));
  // Ascending order, by hand: N <= 3 and std::sort trips a GCC
  // -Warray-bounds false positive on arrays this small.
  for (unsigned I = 1; I < N; ++I)
    for (unsigned J = I; J > 0 && Need[J] < Need[J - 1]; --J)
      std::swap(Need[J], Need[J - 1]);
  lockShards(Need, N, Phys);
  Transaction *Cur = Threads[Tid].CurrTx.load(std::memory_order_relaxed);
  // Edge from the old owner's last transition into RdEx (conservative
  // source for the write-read dependence being upgraded over).
  addCrossEdgeLocked(Threads[OldOwner].LastRdEx, Cur, Phys);
  // Edge ordering all transitions to RdSh (needed so fence transitions
  // capture write-read dependences transitively, Fig. 3).
  addCrossEdgeLocked(Rd, Cur, Phys);
  GLastRdSh = Cur;
  for (unsigned I = N; I-- > 0;)
    unlockShard(Need[I]);
  unlockShard(0);
}

void DoubleCheckerRuntime::onFence(uint32_t Tid) {
  const uint32_t Phys = physTid(Tid);
  lockShard(0, Phys);
  Transaction *Rd = GLastRdSh;
  if (Rd == nullptr) {
    unlockShard(0);
    return;
  }
  uint32_t Need[2] = {0, 0};
  unsigned N = 0;
  auto Add = [&](uint32_t S) {
    if (S == 0)
      return;
    for (unsigned I = 0; I < N; ++I)
      if (Need[I] == S)
        return;
    Need[N++] = S;
  };
  Add(shardOf(Rd->Tid));
  Add(shardOf(Tid));
  if (N == 2 && Need[1] < Need[0])
    std::swap(Need[0], Need[1]);
  lockShards(Need, N, Phys);
  addCrossEdgeLocked(Rd,
                     Threads[Tid].CurrTx.load(std::memory_order_relaxed),
                     Phys);
  for (unsigned I = N; I-- > 0;)
    unlockShard(Need[I]);
  unlockShard(0);
}

//===----------------------------------------------------------------------===//
// IDG maintenance
//===----------------------------------------------------------------------===//

Transaction *DoubleCheckerRuntime::newTransactionLocked(uint32_t Tid,
                                                        ir::MethodId Site,
                                                        bool Regular) {
  PerThread &PT = Threads[Tid];
  auto *Tx =
      new Transaction(composeId(Tid, PT.NextSeq), Tid, PT.NextSeq, Site,
                      Regular);
  ++PT.NextSeq;
  PT.Owned.push_back(Tx);
  Transaction *Prev = PT.CurrTx.load(std::memory_order_relaxed);
  if (Prev != nullptr) {
    OutEdge E;
    E.Dst = Tx;
    E.Id = composeId(Tid, ++PT.NextEdgeSeq);
    E.SrcPos = Prev->LogLen.load(std::memory_order_relaxed);
    E.Intra = true;
    Prev->Out.push_back(E);
  }
  PT.CurrTx.store(Tx, std::memory_order_release);
  PT.CurTs.fetch_add(1, std::memory_order_relaxed);
  if (Regular)
    ++PT.RegularTxs;
  else
    ++PT.UnaryTxs;
  return Tx;
}

void DoubleCheckerRuntime::endCurrentTx(uint32_t Tid) {
  const uint32_t Shard = shardOf(Tid);
  lockShard(Shard, Tid);
  PerThread &PT = Threads[Tid];
  Transaction *Cur = PT.CurrTx.load(std::memory_order_relaxed);
  if (Cur == nullptr) {
    unlockShard(Shard);
    return;
  }
  Cur->EndTime = OrderClock.fetch_add(1, std::memory_order_relaxed) + 1;
  Cur->Finished.store(true, std::memory_order_release);
  const bool NeedScc =
      !PcdOnlyAnalysis && Cur->HasCrossEdge && Opts.DetectIcdCycles;
  unlockShard(Shard);
  // The follow-ups run without the own stripe. Cur is finished, so its log
  // and incoming-edge set are frozen: edges always target the *requesting*
  // thread's own current transaction, and this thread — the only one that
  // could name Cur as an edge destination — is here, not requesting.
  if (PcdOnlyAnalysis) {
    SpinLockGuard Guard(PcdOnlyLock);
    PcdOnlyAnalysis->processTransaction(Cur);
  }
  if (NeedScc)
    pendSccRoot(Cur, Tid);
  if ((FinishedTxs.fetch_add(1, std::memory_order_relaxed) + 1) %
          Opts.CollectEveryTx ==
      0)
    requestCollect(Tid);
}

void DoubleCheckerRuntime::addCrossEdgeLocked(Transaction *Src,
                                              Transaction *Dst,
                                              uint32_t Phys) {
  if (Src == nullptr || Dst == nullptr || Src == Dst)
    return;
  OutEdge E;
  E.Dst = Dst;
  E.Id = composeId(Src->Tid, ++Threads[Src->Tid].NextEdgeSeq);
  E.SrcPos = Src->LogLen.load(std::memory_order_acquire);
  E.Intra = false;
  Src->Out.push_back(E);
  Src->HasCrossEdge = true;
  Dst->HasCrossEdge = true;
  // Timestamp bumps end log-elision windows on both threads (§4).
  Threads[Src->Tid].CurTs.fetch_add(1, std::memory_order_relaxed);
  Threads[Dst->Tid].CurTs.fetch_add(1, std::memory_order_relaxed);
  // Edges interrupt unary-transaction merging.
  if (!Src->Regular)
    Src->Interrupted.store(true, std::memory_order_relaxed);
  if (!Dst->Regular)
    Dst->Interrupted.store(true, std::memory_order_relaxed);
  if (Opts.LogAccesses) {
    LogEntry Marker;
    Marker.K = LogEntry::Kind::EdgeIn;
    Marker.Obj = Src->Tid;
    Marker.Addr = E.SrcPos;
    Marker.SrcSeq = Src->SeqInThread;
    Marker.Time = OrderClock.fetch_add(1, std::memory_order_relaxed) + 1;
    if (Opts.LegacyLog) {
      Dst->appendLogLegacy(Marker);
      Threads[Phys].BytesLogged += sizeof(LogEntry);
    } else {
      // The physical thread executing this call supplies the chunks; it
      // may differ from Dst's owner (requester-side edges), which is fine
      // because chunks have no owner affinity once linked into a log.
      Dst->appendLog(Marker, Phys < NumThreads
                                 ? &Threads[Phys].ChunkCache
                                 : nullptr);
      Threads[Phys < NumThreads ? Phys : Dst->Tid].BytesLogged +=
          2 * sizeof(LogSlot);
    }
  }
  CrossEdges.fetch_add(1, std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// SCC detection (Tarjan over finished transactions)
//===----------------------------------------------------------------------===//

void DoubleCheckerRuntime::pendSccRoot(Transaction *V, uint32_t Holder) {
  bool Flush;
  {
    SpinLockGuard Guard(PendingLock);
    PendingSccRoots.push_back(V);
    Flush = PendingSccRoots.size() >= Opts.SccBatch;
  }
  if (Flush)
    sccPass(Holder);
}

void DoubleCheckerRuntime::sccPass(uint32_t Holder) {
  // All stripes: freezes the whole IDG (every edge writer holds a stripe)
  // and serializes passes against each other and the collector. One freeze
  // serves the whole batch of roots. The pending list is swapped out only
  // *under* the stripes: the entries are what keeps undetected cycles
  // strongly rooted, so removing them while a collection could still run
  // would let it sweep the very transactions this pass is about to walk.
  lockAllShards(Holder);
  std::vector<Transaction *> Roots;
  {
    SpinLockGuard Guard(PendingLock);
    Roots.swap(PendingSccRoots);
  }
  if (Roots.empty()) {
    unlockAllShards();
    return;
  }
  const uint64_t Epoch = ++SccEpochCounter;
  for (Transaction *R : Roots)
    R->RootEpoch = Epoch;
  uint32_t NextIndex = 0;
  std::vector<Transaction *> TarjanStack;
  struct Frame {
    Transaction *Tx;
    size_t EdgeIdx;
  };
  std::vector<Frame> CallStack;
  std::vector<std::vector<Transaction *>> Detected;

  auto Visit = [&](Transaction *Tx) {
    Tx->SccEpoch = Epoch;
    Tx->SccIndex = Tx->SccLow = NextIndex++;
    Tx->OnStack = true;
    TarjanStack.push_back(Tx);
    CallStack.push_back(Frame{Tx, 0});
  };

  for (Transaction *R : Roots) {
    if (R->SccEpoch == Epoch)
      continue; // Already visited from an earlier root of this pass.
    Visit(R);
    while (!CallStack.empty()) {
      Frame &F = CallStack.back();
      if (F.EdgeIdx < F.Tx->Out.size()) {
        Transaction *Next = F.Tx->Out[F.EdgeIdx++].Dst;
        // Only expand finished transactions (§3.2.3): unfinished members
        // will trigger their own detection when they end.
        if (!Next->Finished.load(std::memory_order_acquire))
          continue;
        if (Next->SccEpoch != Epoch) {
          Visit(Next);
        } else if (Next->OnStack) {
          F.Tx->SccLow = std::min(F.Tx->SccLow, Next->SccIndex);
        }
        continue;
      }
      // Post-order: pop the frame; maybe pop a component.
      Transaction *Tx = F.Tx;
      CallStack.pop_back();
      if (!CallStack.empty())
        CallStack.back().Tx->SccLow =
            std::min(CallStack.back().Tx->SccLow, Tx->SccLow);
      if (Tx->SccLow != Tx->SccIndex)
        continue;
      // Tx is the root of a component; pop its members.
      std::vector<Transaction *> Members;
      for (;;) {
        Transaction *M = TarjanStack.back();
        TarjanStack.pop_back();
        M->OnStack = false;
        Members.push_back(M);
        if (M == Tx)
          break;
      }
      if (Members.size() < 2)
        continue;
      if (Opts.TestOnlyUnsoundFilter && Members.size() == 2)
        continue; // Injected unsoundness; see DoubleCheckerOptions.
      // Exactly-once across passes: a cycle is complete precisely when its
      // maximal-EndTime member finishes (edges only ever target unfinished
      // transactions, so no member edge postdates that end), and every
      // transaction is a detection root of exactly one pass — so the pass
      // whose root set holds that member claims the component. Earlier
      // passes saw the cycle incomplete; later ones skip it here.
      uint64_t MaxEnd = 0;
      Transaction *Last = nullptr;
      for (Transaction *M : Members)
        if (Last == nullptr || M->EndTime > MaxEnd) {
          MaxEnd = M->EndTime;
          Last = M;
        }
      if (Last->RootEpoch != Epoch)
        continue;
      SccCount.fetch_add(1, std::memory_order_relaxed);
      {
        SpinLockGuard Guard(SccStateLock);
        for (Transaction *M : Members) {
          if (M->Regular)
            SccSites.insert(M->Site);
          else
            SccAnyUnary = true;
        }
      }
      if (Pcd) {
        // Pin before releasing the stripes so the collector cannot sweep
        // members while the replay (inline or pooled) is in flight.
        for (Transaction *M : Members)
          M->Pins.fetch_add(1, std::memory_order_relaxed);
        Detected.push_back(std::move(Members));
      }
    }
  }
  unlockAllShards();

  if (Detected.empty())
    return;
  if (AsyncPcd) {
    AsyncPcd->enqueueBatch(std::move(Detected));
  } else {
    for (std::vector<Transaction *> &Members : Detected) {
      Pcd->processScc(Members);
      for (Transaction *M : Members)
        M->Pins.fetch_sub(1, std::memory_order_release);
    }
  }
}

//===----------------------------------------------------------------------===//
// Transaction collection (stands in for the JVM's GC)
//===----------------------------------------------------------------------===//

void DoubleCheckerRuntime::requestCollect(uint32_t Holder) {
  if (Collector)
    Collector->request();
  else
    collectNow(Holder);
}

void DoubleCheckerRuntime::collectNow(uint32_t Holder) {
  auto Start = std::chrono::steady_clock::now();
  std::vector<Transaction *> Doomed;
  lockAllShards(Holder);
  const uint64_t Epoch = ++MarkEpochCounter;
  std::vector<Transaction *> Work;
  auto AddRoot = [&](Transaction *Tx) {
    if (Tx != nullptr && Tx->MarkEpoch != Epoch) {
      Tx->MarkEpoch = Epoch;
      Work.push_back(Tx);
    }
  };
  // Strong roots: the unfinished transactions. Everything a future Tarjan
  // walk can visit is forward-reachable from one of them — every edge ever
  // added terminates at a transaction that was current (unfinished) when
  // the edge was created, so no path from the live region leads backward
  // into transactions that finished unreachable.
  for (uint32_t T = 0; T < NumThreads; ++T)
    AddRoot(Threads[T].CurrTx.load(std::memory_order_relaxed));
  // Pending detection roots are strong too: a cycle whose members all
  // finished is no longer reachable from any current transaction, but its
  // batched Tarjan pass has not run yet — members are mutually reachable,
  // so rooting the pending member keeps the whole component alive until
  // the pass claims and pins it.
  {
    SpinLockGuard Guard(PendingLock);
    for (Transaction *R : PendingSccRoots)
      AddRoot(R);
  }
  while (!Work.empty()) {
    Transaction *Tx = Work.back();
    Work.pop_back();
    for (const OutEdge &E : Tx->Out)
      AddRoot(E.Dst);
  }
  // Weak roots: lastRdEx / gLastRdSh may still become *sources* of future
  // edges, so the nodes themselves must survive — but their stale forward
  // closures need not: a cycle through such a node would need an edge from
  // the live region into it, which can never be created. Marking them
  // after the traversal (without enqueueing) keeps the node and lets its
  // unreachable successors be swept; their Out lists then hold dangling
  // pointers, which is fine because only this mark phase ever walks the
  // Out edges of a transaction that is not strongly reachable.
  auto WeakRoot = [&](Transaction *Tx) {
    if (Tx != nullptr)
      Tx->MarkEpoch = Epoch;
  };
  for (uint32_t T = 0; T < NumThreads; ++T)
    WeakRoot(Threads[T].LastRdEx);
  WeakRoot(GLastRdSh);
  // Sweep: a finished transaction not forward-reachable from any root can
  // never gain another edge (edge sinks are current transactions; edge
  // sources are roots), so it cannot join a future cycle. Unreachable also
  // stays unreachable once the stripes drop, and un-pinned stays un-pinned
  // (detections only pin root-reachable members), so the frees can happen
  // outside the stripes.
  uint64_t Live = 0;
  for (uint32_t T = 0; T < NumThreads; ++T) {
    PerThread &PT = Threads[T];
    size_t Kept = 0;
    for (size_t I = 0; I < PT.Owned.size(); ++I) {
      Transaction *Tx = PT.Owned[I];
      if (Tx->MarkEpoch == Epoch ||
          Tx->Pins.load(std::memory_order_acquire) != 0) {
        PT.Owned[Kept++] = Tx;
      } else {
        assert(Tx->Finished.load(std::memory_order_relaxed) &&
               "sweeping a live transaction");
        Doomed.push_back(Tx);
      }
    }
    PT.Owned.resize(Kept);
    Live += Kept;
  }
  unlockAllShards();
  uint64_t PrevMax = CollectorLiveMax.load(std::memory_order_relaxed);
  while (Live > PrevMax && !CollectorLiveMax.compare_exchange_weak(
                               PrevMax, Live, std::memory_order_relaxed))
    ;
  for (Transaction *Tx : Doomed) {
    // Recycle the dead log's chunks before freeing the node; future logs
    // then append into recycled storage instead of allocating.
    Tx->Log.releaseTo(ChunkPool);
    delete Tx;
  }
  TxsSwept.fetch_add(Doomed.size(), std::memory_order_relaxed);
  CollectorRuns.fetch_add(1, std::memory_order_relaxed);
  CollectorNs.fetch_add(
      static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - Start)
              .count()),
      std::memory_order_relaxed);
}

StaticTransactionInfo DoubleCheckerRuntime::staticInfo() {
  // Detection is batched; claim any cycles whose roots are still pending
  // so the accumulated site set is complete at the time of the snapshot.
  if (IdgShards)
    sccPass(HolderCollector);
  SpinLockGuard Guard(SccStateLock);
  StaticTransactionInfo Info;
  Info.AnyUnary = SccAnyUnary;
  for (ir::MethodId Site : SccSites)
    if (Site != ir::InvalidMethodId)
      Info.MethodNames.insert(P.Methods[Site].Name);
  return Info;
}
