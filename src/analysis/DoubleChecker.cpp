//===- analysis/DoubleChecker.cpp -----------------------------------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/DoubleChecker.h"

#include "support/ChromeTrace.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>

using namespace dc;
using namespace dc::analysis;

namespace {

/// Holder id the background collector uses for stripe acquisition (never a
/// program thread id).
constexpr uint32_t HolderCollector = 0xFFFFFFFEu;

/// The program thread currently executing on this OS thread; every checker
/// hook stores it on entry. Octet listener callbacks run inside some hook
/// (a barrier, a safe-point poll, or a blocked-state operation), so this
/// identifies which thread's cache a stripe handoff would miss in.
thread_local uint32_t TlsPhysTid = StripedLockSet::NoHolder;

uint32_t physTid(uint32_t Fallback) {
  return TlsPhysTid == StripedLockSet::NoHolder ? Fallback : TlsPhysTid;
}

/// Ids are (thread, per-thread counter) compositions so allocation needs no
/// global synchronization. Uniqueness within a run is all the analysis
/// needs: nothing orders by id (OrderClock stamps do the ordering).
uint64_t composeId(uint32_t Tid, uint64_t Seq) {
  return (static_cast<uint64_t>(Tid + 1) << 40) | Seq;
}

/// Elision cell packing: tid (16 bits) | wasWrite (1) | ts (47).
uint64_t packCell(uint32_t Tid, bool WasWrite, uint64_t Ts) {
  return (static_cast<uint64_t>(Tid) << 48) |
         (static_cast<uint64_t>(WasWrite) << 47) |
         (Ts & ((1ULL << 47) - 1));
}
uint32_t cellTid(uint64_t Cell) { return static_cast<uint32_t>(Cell >> 48); }
bool cellWasWrite(uint64_t Cell) { return (Cell >> 47) & 1; }
uint64_t cellTs(uint64_t Cell) { return Cell & ((1ULL << 47) - 1); }

} // namespace

//===----------------------------------------------------------------------===//
// Parallel-PCD worker pool
//===----------------------------------------------------------------------===//

/// Bounded multi-worker pool for PCD replays (parallel-PCD extension, §5.3
/// future work). SCCs are independent once detected: members are finished
/// (immutable logs) and pinned by the detecting thread before enqueue; the
/// worker that replays an SCC releases its members' pins. processScc keeps
/// no state across calls, so workers replay distinct SCCs concurrently.
///
/// Overload/fault behaviour (DESIGN.md §10): enqueue and drain are *timed*
/// — a detecting thread blocked past the stall timeout degrades its SCCs
/// to potential violations instead of waiting forever; workers heartbeat a
/// watchdog slot and survive exceptions by degrading the SCC they held.
/// Teardown is bounded: workers that do not exit within the timeout are
/// detached (they share ownership of State, so a straggler never touches
/// freed pool memory), and on Stop leftover queue items are degraded, not
/// replayed.
class DoubleCheckerRuntime::PcdPool {
public:
  PcdPool(DoubleCheckerRuntime &DC, PreciseCycleDetector &Pcd,
          StatisticRegistry &Stats, uint32_t NumWorkers, uint32_t MaxDepth)
      : DC(DC), Pcd(Pcd), MaxDepth(std::max(1u, MaxDepth)),
        StallTimeoutMs(std::max(1u, DC.Opts.PcdStallTimeoutMs)),
        SccsQueued(Stats.get("pcd.sccs_queued")),
        QueueWaitNs(Stats.get("pcd.queue_wait_ns")),
        MaxQueueDepth(Stats.get("pcd.max_queue_depth")),
        WorkerExceptions(Stats.get("pcd.worker_exceptions")),
        WorkersDetached(Stats.get("pcd.workers_detached")),
        EnqueueTimeouts(Stats.get("pcd.enqueue_timeouts")),
        S(std::make_shared<State>()) {
    const uint32_t N = std::max(1u, NumWorkers);
    S->HoldUntil = DC.Opts.Faults.QueueHoldUntil;
    S->ExitedFlags = std::make_unique<std::atomic<bool>[]>(N);
    Workers.reserve(N);
    Slots.reserve(N);
    for (uint32_t I = 0; I < N; ++I)
      Slots.push_back(DC.Dog ? DC.Dog->addComponent("pcd-worker-" +
                                                    std::to_string(I))
                             : 0u);
    // Threads start only after every watchdog slot exists (addComponent
    // must not race Watchdog::start, which the caller invokes after us).
    for (uint32_t I = 0; I < N; ++I)
      Workers.emplace_back([this, I] { run(I); });
  }

  ~PcdPool() {
    {
      std::lock_guard<std::mutex> L(S->M);
      S->Stop.store(true, std::memory_order_release);
    }
    S->HasWork.notify_all();
    S->NotFull.notify_all();
    // Bounded teardown: wait up to the stall timeout for workers to exit
    // (they degrade — never replay — whatever is still queued), then
    // detach stragglers. A detached worker only ever touches State, which
    // it co-owns, so this cannot use-after-free even if it outlives the
    // checker.
    {
      std::unique_lock<std::mutex> L(S->M);
      S->ExitCv.wait_for(L, std::chrono::milliseconds(StallTimeoutMs),
                         [this] { return S->Exited == Workers.size(); });
    }
    for (size_t I = 0; I < Workers.size(); ++I) {
      // Workers that signalled exit finish immediately; the rest are
      // stragglers (a genuinely wedged replay) and get detached.
      if (S->ExitedFlags[I].load(std::memory_order_acquire)) {
        Workers[I].join();
      } else {
        WorkersDetached.add(1);
        Workers[I].detach();
      }
    }
  }

  /// Hands one detection pass's SCCs to the workers (members already
  /// pinned by the caller; whoever replays or degrades an SCC releases its
  /// pins). Backpressure is *timed*: an SCC that cannot be queued within
  /// the stall timeout is degraded to potential violations and a
  /// PcdQueueStall fault is recorded — the detecting thread is never
  /// blocked forever. Safe to wait here: callers hold no IDG stripe and
  /// workers never take one. One notify per woken worker for the whole
  /// batch, not one per SCC: a woken worker drains everything it can see.
  void enqueueBatch(std::vector<std::vector<Transaction *>> Sccs) {
    const auto Now = std::chrono::steady_clock::now();
    size_t Queued = 0;
    bool ReleasedHold = false;
    std::vector<std::vector<Transaction *>> TimedOut;
    {
      std::unique_lock<std::mutex> L(S->M);
      for (std::vector<Transaction *> &Members : Sccs) {
        // The enqueue-attempt counter keys the injected faults: attempts
        // happen in detection order, which a fixed schedule reproduces
        // bit-exactly (dequeue order would not).
        const uint64_t Seq = ++S->EnqueueAttempts;
        if (S->HoldUntil != 0 && Seq >= S->HoldUntil && !S->HoldReleased) {
          S->HoldReleased = true;
          ReleasedHold = true;
        }
        uint8_t Inject = 0;
        if (Seq == DC.Opts.Faults.WorkerStallAt)
          Inject = InjectStall;
        else if (Seq == DC.Opts.Faults.WorkerDieAt)
          Inject = InjectDie;
        const auto Deadline =
            std::chrono::steady_clock::now() +
            std::chrono::milliseconds(StallTimeoutMs);
        bool Admitted = true;
        while (S->Queue.size() >= MaxDepth &&
               !S->Stop.load(std::memory_order_relaxed)) {
          if (std::chrono::steady_clock::now() >= Deadline) {
            Admitted = false;
            break;
          }
          S->NotFull.wait_for(L, std::chrono::milliseconds(5));
          // The caller is the gate-admitted program thread: while it waits
          // here no instruction retires, so beat the gate slot to keep the
          // watchdog pointed at the real culprit (the queue), not the gate.
          if (DC.Dog)
            DC.Dog->heartbeat(DC.DogGateSlot);
        }
        if (!Admitted) {
          EnqueueTimeouts.add(1);
          TimedOut.push_back(std::move(Members));
          continue;
        }
        S->Queue.push_back(Item{std::move(Members), Now, Inject});
        ++Queued;
        SccsQueued.add(1);
        MaxQueueDepth.updateMax(S->Queue.size());
        DC.Governor.queueDepth(+1);
      }
    }
    for (size_t I = std::min(Queued, Workers.size()); I-- > 0;)
      S->HasWork.notify_one();
    if (ReleasedHold)
      S->HasWork.notify_all();
    if (!TimedOut.empty()) {
      DC.recordFault(rt::CheckerFault::PcdQueueStall,
                     "pcd enqueue found the queue saturated for " +
                         std::to_string(StallTimeoutMs) +
                         " ms with no worker progress");
      for (std::vector<Transaction *> &Members : TimedOut)
        degradeAndUnpin(Members);
    }
  }

  /// Waits until every queued SCC has been replayed or degraded, bounded
  /// by the stall timeout: if workers make no progress, the remaining
  /// queue is stolen and degraded on the calling thread so endRun always
  /// terminates (the watchdog supplies the fault diagnosis).
  void drain() {
    std::unique_lock<std::mutex> L(S->M);
    const auto Deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(StallTimeoutMs);
    for (;;) {
      if (S->Queue.empty() && S->Active == 0)
        return;
      if (std::chrono::steady_clock::now() >= Deadline)
        break;
      S->Idle.wait_for(L, std::chrono::milliseconds(5));
      // Mid-run callers (window flushes) are gate-admitted program
      // threads; beat the gate so a slow-but-healthy drain is not
      // misdiagnosed as a wedged scheduler.
      if (DC.Dog)
        DC.Dog->heartbeat(DC.DogGateSlot);
    }
    std::deque<Item> Stolen;
    Stolen.swap(S->Queue);
    L.unlock();
    for (Item &It : Stolen) {
      DC.Governor.queueDepth(-1);
      degradeAndUnpin(It.Members);
    }
    L.lock();
    // Give in-flight replays one more timeout, then give up — the fault
    // is (or will be) recorded; correctness does not depend on them.
    const auto Final = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(StallTimeoutMs);
    while (S->Active != 0 && std::chrono::steady_clock::now() < Final) {
      S->Idle.wait_for(L, std::chrono::milliseconds(5));
      if (DC.Dog)
        DC.Dog->heartbeat(DC.DogGateSlot);
    }
  }

  /// True once an injected worker stall has actually parked a worker
  /// (endRun then waits for the watchdog to convert it into a fault).
  bool stallParked() const {
    return S->StallParked.load(std::memory_order_acquire);
  }

private:
  enum : uint8_t { InjectNone = 0, InjectStall = 1, InjectDie = 2 };

  struct Item {
    std::vector<Transaction *> Members;
    std::chrono::steady_clock::time_point Enqueued;
    uint8_t Inject = InjectNone;
  };

  /// Everything a worker may touch after Stop — co-owned via shared_ptr so
  /// a detached straggler can never use freed pool memory.
  struct State {
    std::mutex M;
    std::condition_variable HasWork;
    std::condition_variable NotFull;
    std::condition_variable Idle;
    std::condition_variable ExitCv;
    std::deque<Item> Queue;
    uint32_t Active = 0;
    size_t Exited = 0;
    std::unique_ptr<std::atomic<bool>[]> ExitedFlags;
    std::atomic<bool> Stop{false};
    std::atomic<bool> StallParked{false};
    /// Injected queue saturation: workers refuse to dequeue until this
    /// many enqueue attempts happened (0 = off).
    uint64_t HoldUntil = 0;
    bool HoldReleased = false;
    uint64_t EnqueueAttempts = 0;
  };

  /// Sound fallback shared by every fault path: the SCC's members' static
  /// sites become a Potential violation record, then the pins drop.
  void degradeAndUnpin(std::vector<Transaction *> &Members) {
    uint64_t Stamp = 0;
    for (const Transaction *Tx : Members)
      Stamp = std::max(Stamp, Tx->EndTime);
    DC.degradeScc(Members, Stamp);
    for (Transaction *Tx : Members)
      Tx->Pins.fetch_sub(1, std::memory_order_release);
  }

  void run(uint32_t WorkerIdx) {
    // Keep State alive even if the pool detaches this thread.
    std::shared_ptr<State> St = S;
    std::unique_lock<std::mutex> L(St->M);
    for (;;) {
      St->HasWork.wait(L, [&] {
        return St->Stop.load(std::memory_order_relaxed) ||
               (!St->Queue.empty() &&
                (St->HoldUntil == 0 || St->HoldReleased));
      });
      if (St->Stop.load(std::memory_order_relaxed)) {
        // Teardown: degrade — never replay — what is left, so shutdown
        // latency is bounded and still sound.
        while (!St->Queue.empty()) {
          Item It = std::move(St->Queue.front());
          St->Queue.pop_front();
          L.unlock();
          DC.Governor.queueDepth(-1);
          degradeAndUnpin(It.Members);
          L.lock();
        }
        St->ExitedFlags[WorkerIdx].store(true, std::memory_order_release);
        ++St->Exited;
        St->ExitCv.notify_all();
        return;
      }
      Item It = std::move(St->Queue.front());
      St->Queue.pop_front();
      ++St->Active;
      L.unlock();
      DC.Governor.queueDepth(-1);
      St->NotFull.notify_one();
      QueueWaitNs.add(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - It.Enqueued)
              .count()));
      if (DC.Dog)
        DC.Dog->beginWork(Slots[WorkerIdx]);
      if (It.Inject == InjectStall) {
        // Injected permanent stall. Degrade the SCC *first* (soundness
        // does not depend on this worker ever waking), then park busy and
        // silent: the watchdog sees a beating-less busy slot and converts
        // the hang into CheckerFault::PcdWorkerStall. Active is released
        // so drain() does not wait on a worker that will never finish.
        degradeAndUnpin(It.Members);
        L.lock();
        --St->Active;
        if (St->Queue.empty() && St->Active == 0)
          St->Idle.notify_all();
        L.unlock();
        St->StallParked.store(true, std::memory_order_release);
        while (!St->Stop.load(std::memory_order_acquire))
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        std::lock_guard<std::mutex> G(St->M);
        ++St->Exited;
        St->ExitCv.notify_all();
        return;
      }
      try {
        if (It.Inject == InjectDie)
          throw std::runtime_error("injected pcd worker death");
        Pcd.processScc(It.Members);
      } catch (...) {
        // A dying replay degrades its SCC and the worker lives on.
        WorkerExceptions.add(1);
        uint64_t Stamp = 0;
        for (const Transaction *Tx : It.Members)
          Stamp = std::max(Stamp, Tx->EndTime);
        DC.degradeScc(It.Members, Stamp);
      }
      for (Transaction *Tx : It.Members)
        Tx->Pins.fetch_sub(1, std::memory_order_release);
      if (DC.Dog)
        DC.Dog->endWork(Slots[WorkerIdx]);
      L.lock();
      --St->Active;
      if (St->Queue.empty() && St->Active == 0)
        St->Idle.notify_all();
    }
  }

  DoubleCheckerRuntime &DC;
  PreciseCycleDetector &Pcd;
  const uint32_t MaxDepth;
  const uint32_t StallTimeoutMs;
  Statistic &SccsQueued;
  Statistic &QueueWaitNs;
  Statistic &MaxQueueDepth;
  Statistic &WorkerExceptions;
  Statistic &WorkersDetached;
  Statistic &EnqueueTimeouts;

  std::shared_ptr<State> S;
  std::vector<uint32_t> Slots;
  std::vector<std::thread> Workers;
};

//===----------------------------------------------------------------------===//
// Background transaction collector
//===----------------------------------------------------------------------===//

/// Runs mark-sweep passes off the critical path. Triggers from
/// endCurrentTx only bump a request counter; pending requests coalesce
/// into one pass (a pass sweeps everything currently unreachable, so a
/// coalesced pass frees no less than the passes it replaces).
class DoubleCheckerRuntime::TxCollector {
public:
  explicit TxCollector(DoubleCheckerRuntime &DC) : DC(DC) {
    Worker = std::thread([this] { run(); });
  }

  ~TxCollector() {
    {
      std::lock_guard<std::mutex> L(M);
      Stop = true;
    }
    CV.notify_all();
    Worker.join();
  }

  void request() {
    {
      std::lock_guard<std::mutex> L(M);
      ++Requested;
    }
    CV.notify_one();
  }

  /// Waits until every request made before the call has been served,
  /// bounded by the stall timeout: a wedged (or fault-delayed) collector
  /// becomes a structured CollectorStall fault instead of hanging endRun.
  /// Skipping the sweep is always safe — collection only frees memory.
  void drain() {
    std::unique_lock<std::mutex> L(M);
    const uint64_t Target = Requested;
    const uint32_t TimeoutMs = std::max(1u, DC.Opts.PcdStallTimeoutMs);
    if (!Done.wait_for(L, std::chrono::milliseconds(TimeoutMs),
                       [&] { return Completed >= Target; })) {
      L.unlock();
      DC.recordFault(rt::CheckerFault::CollectorStall,
                     "collector drain timed out after " +
                         std::to_string(TimeoutMs) + " ms");
    }
  }

private:
  void run() {
    std::unique_lock<std::mutex> L(M);
    for (;;) {
      CV.wait(L, [this] { return Stop || Completed < Requested; });
      if (Completed >= Requested && Stop)
        return;
      const uint64_t Target = Requested; // Coalesce pending requests.
      L.unlock();
      // beginWork before the injected delay: the fault plan models a
      // collector that accepted work and then made no progress, which is
      // exactly what the watchdog's busy-and-silent detection covers.
      if (DC.Dog)
        DC.Dog->beginWork(DC.DogCollectorSlot);
      if (DC.Opts.Faults.CollectorDelayMs != 0)
        std::this_thread::sleep_for(
            std::chrono::milliseconds(DC.Opts.Faults.CollectorDelayMs));
      DC.collectNow(HolderCollector);
      if (DC.Dog)
        DC.Dog->endWork(DC.DogCollectorSlot);
      L.lock();
      Completed = Target;
      Done.notify_all();
    }
  }

  DoubleCheckerRuntime &DC;
  std::mutex M;
  std::condition_variable CV;
  std::condition_variable Done;
  uint64_t Requested = 0;
  uint64_t Completed = 0;
  bool Stop = false;
  std::thread Worker;
};

//===----------------------------------------------------------------------===//
// Construction / run lifecycle
//===----------------------------------------------------------------------===//

DoubleCheckerRuntime::DoubleCheckerRuntime(const ir::Program &P,
                                           DoubleCheckerOptions Opts,
                                           ViolationLog &Violations,
                                           StatisticRegistry &Stats)
    : P(P), Opts(Opts), Violations(Violations), Stats(Stats) {
  // Resolve the log publication path once: LegacyLog beats everything,
  // then ThreadArenaLog / PcdOnly select the arena (PcdOnly's online
  // analysis consumes each log synchronously at transaction end — it
  // cannot tolerate deferred materialization), and the per-CPU ring
  // transport (DESIGN.md §13) is the default.
  Transport = Opts.LegacyLog ? LogTransport::Legacy
              : (Opts.ThreadArenaLog || Opts.PcdOnly) ? LogTransport::Arena
                                                      : LogTransport::Ring;
  if (Opts.PcdOnly) {
    this->Opts.LogAccesses = true;
    this->Opts.RunPcd = false;
    // The persistent precise state pins transactions; never sweep.
    this->Opts.CollectEveryTx = ~0u;
    PcdOnlyAnalysis = std::make_unique<OnlinePcd>(Violations, Stats);
    return;
  }
  if (Opts.RunPcd) {
    PreciseCycleDetector::Options PcdOpts;
    PcdOpts.MaxSccTxs = Opts.MaxSccTxsForPcd;
    Pcd = std::make_unique<PreciseCycleDetector>(Violations, Stats, PcdOpts);
  }
}

DoubleCheckerRuntime::~DoubleCheckerRuntime() {
  // Defensive: endRun retires the ring drainer; if the run aborted before
  // reaching it, the drainer must still stop before the transactions it
  // materializes into are deleted below.
  if (RingDrainer.joinable()) {
    DrainerStop.store(true, std::memory_order_release);
    RingDrainer.join();
  }
  // Stop the PCD pool before freeing the transactions it may still be
  // replaying, the collector before tearing down the stripes it locks, and
  // the watchdog last (both components beat slots it owns until they stop).
  AsyncPcd.reset();
  Collector.reset();
  Dog.reset();
  for (uint32_t T = 0; T < NumThreads; ++T)
    for (Transaction *Tx : Threads[T].Owned)
      delete Tx;
}

void DoubleCheckerRuntime::beginRun(rt::Runtime &RT) {
  TheRT = &RT;
  NumThreads = RT.numThreads();
  Threads = std::make_unique<PerThread[]>(NumThreads);
  // Stripe 0 is the global stripe (gLastRdSh); Tid+1 is thread Tid's.
  NumShards = Opts.SerializedIdg ? 1 : NumThreads + 1;
  IdgShards = std::make_unique<StripedLockSet>(NumShards);
  // Default cycle detection is incremental (DESIGN.md §12): every edge
  // insert answers "cycle?" directly and no stop-the-world Tarjan pass
  // ever runs. BatchedScc selects the batched passes; PcdOnly and the
  // DetectIcdCycles ablation need no cycle detection at all.
  if (!PcdOnlyAnalysis && Opts.DetectIcdCycles && !Opts.BatchedScc) {
    IncrementalCycleDetector::Options IOpts;
    IOpts.MaxRegion = std::max(1u, Opts.IcdMaxRegion);
    IOpts.LockedFastPath = Opts.IcdLockedFastPath;
    IOpts.RetryStorm = Opts.IcdSeqRetryStorm;
    Icd = std::make_unique<IncrementalCycleDetector>(IOpts);
  }
  Octet = std::make_unique<octet::OctetManager>(
      RT.heap(), NumThreads, this, Stats, &RT.abortFlag(),
      Opts.SerialRoundtrips);
  // Resource governor: budgets come straight from the options; the chunk
  // pool charges log bytes against it and consults it on refills.
  ResourceBudgets B;
  B.MaxLiveTxs = Opts.MaxLiveTxs;
  B.MaxLogBytes = Opts.MaxLogBytes;
  Governor.configure(B);
  ChunkPool.setGovernor(&Governor);
  ChunkPool.failRefillAt(Opts.Faults.AllocFailAt);
  // The watchdog only exists when there are background components to
  // monitor. SerializedIdg keeps the pre-sharding behaviour: collection
  // runs inline on the triggering thread. CollectEveryTx == ~0u (PcdOnly)
  // never triggers, so the collector thread would sit idle.
  const bool WantPool = Opts.ParallelPcd && Pcd != nullptr;
  const bool WantCollector =
      !Opts.SerializedIdg && Opts.CollectEveryTx != ~0u;
  const bool WantDrainer =
      Opts.LogAccesses && Transport == LogTransport::Ring;
  // Streaming mode always arms the watchdog: the window slot is what turns
  // a wedged flush into a structured WindowFlushStall instead of a stuck
  // server.
  const bool WantWindow = Opts.WindowTxs != 0;
  if (WantPool || WantCollector || WantDrainer || WantWindow) {
    rt::Watchdog::Options WOpts;
    WOpts.TimeoutMs = std::max(1u, Opts.PcdStallTimeoutMs);
    WOpts.PollMs = std::max(1u, Opts.WatchdogPollMs);
    Dog = std::make_unique<rt::Watchdog>(
        WOpts, [this](const std::string &Component, uint64_t SilentMs) {
          onComponentStall(Component, SilentMs);
        });
    DogGateSlot = Dog->addComponent("gate");
    if (WantCollector)
      DogCollectorSlot = Dog->addComponent("collector");
    if (WantDrainer)
      DogDrainerSlot = Dog->addComponent("ring-drainer");
    if (WantWindow)
      DogWindowSlot = Dog->addComponent("window-flush");
  }
  if (WantPool)
    AsyncPcd = std::make_unique<PcdPool>(*this, *Pcd, Stats, Opts.PcdWorkers,
                                         Opts.PcdQueueDepth);
  if (WantCollector)
    Collector = std::make_unique<TxCollector>(*this);
  if (Dog) {
    Dog->start();
    // The gate slot is busy for the whole run: program threads beat it
    // from safePoint, so a wedged scheduler gate surfaces as GateStall.
    Dog->beginWork(DogGateSlot);
  }
  if (Opts.LogAccesses) {
    if (Transport == LogTransport::Legacy) {
      ElisionCells = std::vector<std::atomic<uint64_t>>(
          RT.heap().numFieldAddrs());
      CellContended = std::vector<std::atomic<uint8_t>>(
          RT.heap().numFieldAddrs());
    } else if (Transport == LogTransport::Arena) {
      for (uint32_t T = 0; T < NumThreads; ++T)
        Threads[T].ChunkCache.attach(&ChunkPool);
    } else {
      // Ring transport (DESIGN.md §13): footprint is O(cores), independent
      // of the program's thread count — per-thread chunk caches stay
      // detached; the drain side owns the only cache.
      const uint32_t NumRings =
          Opts.RingCount != 0
              ? Opts.RingCount
              : std::max(1u, std::thread::hardware_concurrency());
      Ring = std::make_unique<RingLog>(NumRings, Opts.RingBytes);
      Ring->attachPool(&ChunkPool);
      // Drain-side chunk refusals are sheds too — surface them as the same
      // structured ShedLogging event arena mode records at the mutator.
      // The stamp is the transaction id (schedule-determined), not the
      // order clock: drain timing is wall-clock and must not leak into the
      // deterministic degradation report.
      Ring->setShedHook([this](Transaction *Tx) {
        recordDegradation(
            {rt::DegradationEvent::Action::ShedLogging, Tx->Tid, Tx->Id});
      });
      DrainerStop.store(false, std::memory_order_relaxed);
      RingDrainer = std::thread([this] { ringDrainLoop(); });
    }
  }
}

void DoubleCheckerRuntime::endRun(rt::Runtime &RT) {
  // The run is over: no program thread will beat the gate slot again, so
  // retire it before the (possibly long) drains below can trip GateStall.
  if (Dog)
    Dog->endWork(DogGateSlot);
  // Flush the tail of detection, then drain the deferred machinery it may
  // have fed. Incremental mode has nothing batched to flush — every cycle
  // was claimed at its last member's retire — so finalize only claims
  // defensively (icd.finalize_claims, expected 0) and keeps scc_passes at
  // zero. Batched mode flushes roots still short of a full batch.
  if (Icd) {
    IncrementalCycleDetector::ClaimList Claims;
    Icd->finalize(Claims);
    executeIcdClaims(Claims);
  } else {
    sccPass(HolderCollector);
  }
  if (AsyncPcd)
    AsyncPcd->drain();
  if (Collector)
    Collector->drain();
  // Ring transport: the run is over and the claim/PCD tail above has been
  // flushed, so no more records will be published. Retire the drainer (its
  // loop ends with a final drainAll, materializing any tail).
  if (RingDrainer.joinable()) {
    DrainerStop.store(true, std::memory_order_release);
    RingDrainer.join();
  }
  // An injected worker stall parks a worker busy-and-silent; give the
  // watchdog time to convert it into a structured fault before disarming,
  // so the fault reliably lands in this run's RunResult.
  if (Dog && AsyncPcd && AsyncPcd->stallParked()) {
    const auto Deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(Opts.PcdStallTimeoutMs +
                                  50u * std::max(1u, Opts.WatchdogPollMs) +
                                  200u);
    for (;;) {
      {
        SpinLockGuard Guard(HealthLock);
        if (Fault != rt::CheckerFault::None)
          break;
      }
      if (std::chrono::steady_clock::now() >= Deadline)
        break;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  if (Dog)
    Dog->disarm();
  Octet->flushStatistics();
  uint64_t Regular = 0, Unary = 0, AccR = 0, AccU = 0, LogN = 0, LogE = 0;
  uint64_t Bytes = 0, Dropped = 0, Sheds = 0;
  for (uint32_t T = 0; T < NumThreads; ++T) {
    const PerThread &PT = Threads[T];
    Regular += PT.RegularTxs;
    Unary += PT.UnaryTxs;
    AccR += PT.AccRegular;
    AccU += PT.AccUnary;
    LogN += PT.LogEntries;
    LogE += PT.LogElided;
    Dropped += PT.LogDropped;
    Sheds += PT.ShedCount;
    // On the arena path access appends don't bump BytesLogged inline (the
    // hot path carries no byte accounting; one slot per entry is implied)
    // — only EdgeIn markers do. The legacy path accounts every append.
    Bytes += PT.BytesLogged +
             (Opts.LegacyLog ? 0 : PT.LogEntries * sizeof(LogSlot));
  }
  Stats.get("icd.regular_transactions").add(Regular);
  Stats.get("icd.unary_transactions").add(Unary);
  Stats.get("icd.instrumented_accesses_regular").add(AccR);
  Stats.get("icd.instrumented_accesses_unary").add(AccU);
  Stats.get("icd.log_entries").add(LogN);
  Stats.get("icd.log_entries_elided").add(LogE);
  Stats.get("logging.bytes_logged").add(Bytes);
  if (!Opts.LegacyLog) {
    Stats.get("logging.filter_hits").add(LogE);
    Stats.get("logging.chunk_allocs").add(ChunkPool.chunkAllocs());
    Stats.get("logging.chunk_recycles").add(ChunkPool.chunkRecycles());
    Stats.get("logging.refill_requests").add(ChunkPool.refillRequests());
    Stats.get("logging.refills_refused").add(ChunkPool.refillsRefused());
  }
  if (Ring) {
    uint64_t RC = 0, RF = 0, RM = 0, RS = 0;
    for (uint32_t T = 0; T < NumThreads; ++T) {
      RC += Threads[T].RingCommits;
      RF += Threads[T].RingFullEvents;
      RM += Threads[T].RingMigrations;
      RS += Threads[T].RingSelfDrains;
    }
    Stats.get("logging.ring_commits").add(RC);
    Stats.get("logging.ring_full_events").add(RF);
    Stats.get("logging.ring_migrations").add(RM);
    Stats.get("logging.ring_self_drains").add(RS);
    Stats.get("logging.ring_drains").add(Ring->drainPasses());
    Stats.get("logging.ring_records_drained").add(Ring->recordsDrained());
    Stats.get("logging.ring_shed_refusals").add(Ring->shedRefusals());
    Stats.get("logging.ring_drain_stalls")
        .add(RingDrainStalls.load(std::memory_order_relaxed));
    Stats.get("logging.ring_footprint_bytes")
        .updateMax(Ring->footprintBytes());
    Stats.get("logging.ring_count").updateMax(Ring->numRings());
  }
  Stats.get("degradation.log_dropped").add(Dropped);
  Stats.get("degradation.sheds")
      .add(Sheds + (Ring ? Ring->shedRefusals() : 0));
  Governor.flush(Stats);
  if (Opts.WindowTxs != 0)
    Stats.get("window.flushes_degraded")
        .add(WindowDegraded.load(std::memory_order_relaxed));
  Stats.get("icd.idg_cross_edges")
      .add(CrossEdges.load(std::memory_order_relaxed));
  Stats.get("icd.sccs").add(SccCount.load(std::memory_order_relaxed));
  Stats.get("icd.scc_passes").add(SccPasses.load(std::memory_order_relaxed));
  Stats.get("icd.scc_visited")
      .add(SccVisited.load(std::memory_order_relaxed));
  Stats.get("governor.tx_backpressure_waits")
      .add(BackpressureWaits.load(std::memory_order_relaxed));
  Stats.get("icd.collector_runs")
      .add(CollectorRuns.load(std::memory_order_relaxed));
  Stats.get("icd.collector_ns")
      .add(CollectorNs.load(std::memory_order_relaxed));
  Stats.get("icd.txs_swept").add(TxsSwept.load(std::memory_order_relaxed));
  Stats.get("icd.collector_live")
      .updateMax(CollectorLiveMax.load(std::memory_order_relaxed));
  Stats.get("icd.idg_shards").updateMax(NumShards);
  Stats.get("icd.idg_lock_handoffs").add(IdgShards->totalHandoffs());
  if (Icd)
    Icd->flushStats(Stats);
}

//===----------------------------------------------------------------------===//
// Stripe helpers
//===----------------------------------------------------------------------===//

void DoubleCheckerRuntime::lockShard(uint32_t S, uint32_t Holder) {
  if (IdgShards->lock(S, Holder) && Opts.IdgRemoteMissPenalty != 0)
    spinPenalty(Opts.IdgRemoteMissPenalty,
                (static_cast<uint64_t>(S) << 32) | Holder);
}

void DoubleCheckerRuntime::lockShards(const uint32_t *Shards, unsigned N,
                                      uint32_t Holder) {
  // Batched acquisition pays at most one remote-miss penalty: the stripes'
  // cache lines are independent, so on real hardware their coherence
  // transfers overlap (memory-level parallelism) instead of forming the
  // serial dependence chain spinPenalty models. Per-stripe handoffs are
  // still counted individually for the icd.idg_lock_handoffs statistic.
  bool AnyHandoff = false;
  for (unsigned I = 0; I < N; ++I)
    AnyHandoff |= IdgShards->lock(Shards[I], Holder);
  if (AnyHandoff && Opts.IdgRemoteMissPenalty != 0)
    spinPenalty(Opts.IdgRemoteMissPenalty, Holder);
}

void DoubleCheckerRuntime::lockAllShards(uint32_t Holder) {
  // Same memory-level-parallelism batching as lockShards, over every stripe.
  bool AnyHandoff = false;
  for (uint32_t S = 0; S < NumShards; ++S)
    AnyHandoff |= IdgShards->lock(S, Holder);
  if (AnyHandoff && Opts.IdgRemoteMissPenalty != 0)
    spinPenalty(Opts.IdgRemoteMissPenalty, Holder);
}

void DoubleCheckerRuntime::unlockAllShards() {
  for (uint32_t S = NumShards; S-- > 0;)
    unlockShard(S);
}

void DoubleCheckerRuntime::spinPenalty(uint32_t Iters, uint64_t Seed) {
  uint64_t Acc = Seed;
  for (uint32_t I = 0; I < Iters; ++I)
    Acc = Acc * 6364136223846793005ULL + 1442695040888963407ULL;
  PenaltySink.fetch_add(Acc, std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Checker hooks
//===----------------------------------------------------------------------===//

void DoubleCheckerRuntime::threadStarted(rt::ThreadContext &TC) {
  TlsPhysTid = TC.Tid;
  Octet->threadStarted(TC.Tid);
  const uint32_t S = shardOf(TC.Tid);
  lockShard(S, TC.Tid);
  newTransactionLocked(TC.Tid, ir::InvalidMethodId, /*Regular=*/false);
  unlockShard(S);
}

void DoubleCheckerRuntime::threadExiting(rt::ThreadContext &TC) {
  TlsPhysTid = TC.Tid;
  endCurrentTx(TC.Tid);
  // CurrTx intentionally stays on the (finished) final transaction: a
  // conflicting transition can still name this thread as its responder
  // (its objects keep their WrEx/RdEx states after exit), and the edge
  // source must then be the thread's last transaction — nulling it here
  // would silently drop those edges.
  Octet->threadExited(TC.Tid);
}

void DoubleCheckerRuntime::txBegin(rt::ThreadContext &TC,
                                   const ir::Method &M) {
  TlsPhysTid = TC.Tid;
  endCurrentTx(TC.Tid);
  collectBackpressure(TC.Tid);
  const uint32_t S = shardOf(TC.Tid);
  lockShard(S, TC.Tid);
  newTransactionLocked(TC.Tid, P.originalOf(M.Id), /*Regular=*/true);
  unlockShard(S);
}

void DoubleCheckerRuntime::txEnd(rt::ThreadContext &TC, const ir::Method &M) {
  // §4: at method end, a new unary transaction begins.
  TlsPhysTid = TC.Tid;
  endCurrentTx(TC.Tid);
  collectBackpressure(TC.Tid);
  const uint32_t S = shardOf(TC.Tid);
  lockShard(S, TC.Tid);
  newTransactionLocked(TC.Tid, ir::InvalidMethodId, /*Regular=*/false);
  unlockShard(S);
}

Transaction *DoubleCheckerRuntime::currentForAccess(rt::ThreadContext &TC,
                                                    PerThread &PT) {
  Transaction *Cur = PT.CurrTx.load(std::memory_order_relaxed);
  assert(Cur && "access outside any transaction context");
  if (Cur->Regular || !Cur->Interrupted.load(std::memory_order_relaxed))
    return Cur;
  // The merged unary transaction was interrupted by a cross-thread edge;
  // end it and start a fresh one (§4's merge optimization boundary).
  endCurrentTx(TC.Tid);
  const uint32_t S = shardOf(TC.Tid);
  lockShard(S, TC.Tid);
  Transaction *Fresh = newTransactionLocked(TC.Tid, ir::InvalidMethodId,
                                            /*Regular=*/false);
  unlockShard(S);
  return Fresh;
}

void DoubleCheckerRuntime::instrumentedAccess(rt::ThreadContext &TC,
                                              const rt::AccessInfo &Info,
                                              function_ref<void()> Access) {
  TlsPhysTid = TC.Tid;
  PerThread &PT = Threads[TC.Tid];
  Transaction *Cur = currentForAccess(TC, PT);
  if (Info.Flags & ir::IF_OctetBarrier) {
    if (Info.IsWrite)
      Octet->writeBarrier(TC, Info.Obj);
    else
      Octet->readBarrier(TC, Info.Obj);
  }
  Access();
  if (Opts.LogAccesses && (Info.Flags & ir::IF_LogAccess))
    logAccess(TC, PT, Cur, Info);
  if (Cur->Regular)
    ++PT.AccRegular;
  else
    ++PT.AccUnary;
}

void DoubleCheckerRuntime::logAccess(rt::ThreadContext &TC, PerThread &PT,
                                     Transaction *Cur,
                                     const rt::AccessInfo &Info) {
  const uint64_t MyTs = PT.CurTs.load(std::memory_order_relaxed);
  if (!Opts.LegacyLog) {
    // Default path (DESIGN.md §8): thread-local filter, chunked arena.
    // The only shared-visible write is the LogLen publication, and chunks
    // come from the thread's cache — zero shared writes beyond that, zero
    // allocations in steady state.
    if (PT.LogShedActive) {
      // Degradation ladder (DESIGN.md §10): this thread is shedding.
      // Drop the entry but mark the transaction, so any SCC it joins is
      // degraded to a potential violation instead of replayed from an
      // incomplete log (which would be unsound).
      Cur->LogShed.store(true, std::memory_order_relaxed);
      ++PT.LogDropped;
      return;
    }
    if (Opts.ElideDuplicates &&
        PT.Filter.testAndSet(ElisionFilter::key(Info.Obj, Info.Addr), MyTs,
                             Info.IsWrite)) {
      // Duplicate with no intervening edge or transaction boundary: elide.
      ++PT.LogElided;
      return;
    }
    if (Transport == LogTransport::Ring) {
      // Ring transport (DESIGN.md §13): one wait-free-bounded publish; no
      // chunk changes hands on this path. The position comes from LogLen
      // (single-writer: only this thread assigns positions in Cur's log
      // while it runs), and LogLen is stored only after the cell is
      // published — a concurrently sampled SrcPos never names an
      // unpublished record.
      LogSlot S;
      S.A = Info.Obj;
      S.B = Info.Addr;
      S.Meta = Info.IsWrite ? SlotTagWrite : SlotTagRead;
      const uint32_t Pos = Cur->LogLen.load(std::memory_order_relaxed);
      if (!ringPublish(PT, Cur, Pos, &S, 1)) {
        // Every rung of the full-ring ladder failed: same degradation
        // decision point as a refused chunk refill on the arena path.
        beginShed(PT, TC.Tid, Cur);
        return;
      }
      Cur->LogLen.store(Pos + 1, std::memory_order_release);
      ++PT.LogEntries;
      return;
    }
    if (Cur->Log.tailFull()) {
      // Chunk boundary: the refill is the ladder's decision point. A
      // refused refill (governor log-byte pressure or an injected
      // allocation failure) starts shedding on this thread — except under
      // PcdOnly, whose online analysis needs complete logs to stay
      // meaningful, so it falls back to a direct allocation.
      LogChunk *C = PT.ChunkCache.tryGet();
      if (C == nullptr) {
        if (PcdOnlyAnalysis) {
          C = new LogChunk();
        } else {
          beginShed(PT, TC.Tid, Cur);
          return;
        }
      }
      Cur->Log.adoptChunk(C);
    }
    Cur->LogLen.store(
        Cur->Log.appendAccess(Info.Obj, Info.Addr, Info.IsWrite,
                              &PT.ChunkCache),
        std::memory_order_release);
    ++PT.LogEntries; // Byte accounting is derived at flush: 1 slot/entry.
    return;
  }
  // Legacy path (LegacyLog): globally shared elision cells and a
  // reallocating vector log, with the remote-miss simulation the shared
  // cells warrant.
  std::atomic<uint64_t> &CellA = ElisionCells[Info.Addr];
  uint64_t Cell = CellA.load(std::memory_order_relaxed);
  if (Opts.ElideDuplicates && cellTid(Cell) == TC.Tid &&
      cellTs(Cell) == MyTs && (cellWasWrite(Cell) || !Info.IsWrite)) {
    ++PT.LogElided;
    return;
  }
  LogEntry E;
  E.K = Info.IsWrite ? LogEntry::Kind::Write : LogEntry::Kind::Read;
  E.Obj = Info.Obj;
  E.Addr = Info.Addr;
  Cur->appendLogLegacy(E);
  ++PT.LogEntries;
  PT.BytesLogged += sizeof(LogEntry);
  if (Opts.LogRemoteMissPenalty != 0) {
    // Remote-miss simulation for the elision cell rewrite (see
    // DoubleCheckerOptions::LogRemoteMissPenalty).
    if (Cell != 0 && cellTid(Cell) != TC.Tid)
      CellContended[Info.Addr].store(1, std::memory_order_relaxed);
    if (CellContended[Info.Addr].load(std::memory_order_relaxed))
      spinPenalty(Opts.LogRemoteMissPenalty, Info.Addr);
  }
  CellA.store(packCell(TC.Tid, Info.IsWrite, MyTs),
              std::memory_order_relaxed);
}

void DoubleCheckerRuntime::syncOp(rt::ThreadContext &TC,
                                  const rt::AccessInfo &Info,
                                  rt::SyncKind Kind) {
  if (Info.Flags == ir::IF_None)
    return;
  // Acquire-like ops behave as reads, release-like as writes, on the
  // synchronized object (already encoded in Info by the runtime).
  instrumentedAccess(TC, Info, [] {});
}

void DoubleCheckerRuntime::safePoint(rt::ThreadContext &TC) {
  TlsPhysTid = TC.Tid;
  if (Dog != nullptr) {
    // Program threads collectively beat the gate slot: as long as any
    // thread keeps retiring instructions the scheduler gate is healthy.
    // Throttled — an atomic store per safe point would be hot-path noise.
    PerThread &PT = Threads[TC.Tid];
    if ((++PT.SafePointBeats & 63u) == 0)
      Dog->heartbeat(DogGateSlot);
  }
  Octet->pollSafePoint(TC.Tid);
}

void DoubleCheckerRuntime::aboutToBlock(rt::ThreadContext &TC) {
  TlsPhysTid = TC.Tid;
  Octet->aboutToBlock(TC.Tid);
}

void DoubleCheckerRuntime::unblocked(rt::ThreadContext &TC) {
  TlsPhysTid = TC.Tid;
  Octet->unblocked(TC.Tid);
}

//===----------------------------------------------------------------------===//
// Octet listener: Figure 4 edge creation
//===----------------------------------------------------------------------===//

void DoubleCheckerRuntime::onConflictingEdge(uint32_t RespTid,
                                             const octet::Transition &T) {
  // Runs on the responder (explicit protocol) or on a requester holding /
  // rescuing the blocked responder (implicit); both endpoints' current
  // transactions are stable for the duration, but several of these
  // callbacks may run *concurrently* for the same responder under the
  // pipelined fan-out (see OctetListener's contract). That is sound here
  // because every insertion below locks the responder's stripe (and the
  // requester's), so same-responder edge creations serialize on shardOf
  // (RespTid) while the quiescence guarantee pins both CurrTx loads
  // (DESIGN.md §11).
  const uint32_t Phys = physTid(T.Requester);
  uint32_t A = shardOf(RespTid);
  uint32_t B = shardOf(T.Requester);
  if (A > B)
    std::swap(A, B);
  uint32_t Need[2] = {A, B};
  const unsigned N = B != A ? 2 : 1;
  lockShards(Need, N, Phys);
  addCrossEdgeLocked(Threads[RespTid].CurrTx.load(std::memory_order_relaxed),
                     Threads[T.Requester].CurrTx.load(
                         std::memory_order_relaxed),
                     Phys);
  for (unsigned I = N; I-- > 0;)
    unlockShard(Need[I]);
}

void DoubleCheckerRuntime::onBecameRdEx(uint32_t Tid) {
  // Always runs on thread Tid itself (the thread claiming RdEx ownership).
  const uint32_t S = shardOf(Tid);
  lockShard(S, physTid(Tid));
  Threads[Tid].LastRdEx = Threads[Tid].CurrTx.load(std::memory_order_relaxed);
  unlockShard(S);
}

void DoubleCheckerRuntime::onUpgradeToRdSh(uint32_t Tid, uint32_t OldOwner,
                                           uint64_t Counter) {
  const uint32_t Phys = physTid(Tid);
  // Stripe 0 pins gLastRdSh's identity; the remaining stripes are only
  // known after reading it, and are all ranked above stripe 0, so the
  // ascending lock order is preserved.
  lockShard(0, Phys);
  Transaction *Rd = GLastRdSh;
  uint32_t Need[3] = {0, 0, 0};
  unsigned N = 0;
  auto Add = [&](uint32_t S) {
    if (S == 0)
      return; // Already held (always the case under SerializedIdg).
    for (unsigned I = 0; I < N; ++I)
      if (Need[I] == S)
        return;
    Need[N++] = S;
  };
  Add(shardOf(OldOwner));
  Add(shardOf(Tid));
  if (Rd != nullptr)
    Add(shardOf(Rd->Tid));
  // Ascending order, by hand: N <= 3 and std::sort trips a GCC
  // -Warray-bounds false positive on arrays this small.
  for (unsigned I = 1; I < N; ++I)
    for (unsigned J = I; J > 0 && Need[J] < Need[J - 1]; --J)
      std::swap(Need[J], Need[J - 1]);
  lockShards(Need, N, Phys);
  Transaction *Cur = Threads[Tid].CurrTx.load(std::memory_order_relaxed);
  // Edge from the old owner's last transition into RdEx (conservative
  // source for the write-read dependence being upgraded over).
  addCrossEdgeLocked(Threads[OldOwner].LastRdEx, Cur, Phys);
  // Edge ordering all transitions to RdSh (needed so fence transitions
  // capture write-read dependences transitively, Fig. 3).
  addCrossEdgeLocked(Rd, Cur, Phys);
  GLastRdSh = Cur;
  for (unsigned I = N; I-- > 0;)
    unlockShard(Need[I]);
  unlockShard(0);
}

void DoubleCheckerRuntime::onFence(uint32_t Tid) {
  const uint32_t Phys = physTid(Tid);
  lockShard(0, Phys);
  Transaction *Rd = GLastRdSh;
  if (Rd == nullptr) {
    unlockShard(0);
    return;
  }
  uint32_t Need[2] = {0, 0};
  unsigned N = 0;
  auto Add = [&](uint32_t S) {
    if (S == 0)
      return;
    for (unsigned I = 0; I < N; ++I)
      if (Need[I] == S)
        return;
    Need[N++] = S;
  };
  Add(shardOf(Rd->Tid));
  Add(shardOf(Tid));
  if (N == 2 && Need[1] < Need[0])
    std::swap(Need[0], Need[1]);
  lockShards(Need, N, Phys);
  addCrossEdgeLocked(Rd,
                     Threads[Tid].CurrTx.load(std::memory_order_relaxed),
                     Phys);
  for (unsigned I = N; I-- > 0;)
    unlockShard(Need[I]);
  unlockShard(0);
}

//===----------------------------------------------------------------------===//
// IDG maintenance
//===----------------------------------------------------------------------===//

Transaction *DoubleCheckerRuntime::newTransactionLocked(uint32_t Tid,
                                                        ir::MethodId Site,
                                                        bool Regular) {
  PerThread &PT = Threads[Tid];
  auto *Tx =
      new Transaction(composeId(Tid, PT.NextSeq), Tid, PT.NextSeq, Site,
                      Regular);
  ++PT.NextSeq;
  PT.Owned.push_back(Tx);
  Transaction *Prev = PT.CurrTx.load(std::memory_order_relaxed);
  if (Prev != nullptr) {
    OutEdge E;
    E.Dst = Tx;
    E.Id = composeId(Tid, ++PT.NextEdgeSeq);
    E.SrcPos = Prev->LogLen.load(std::memory_order_relaxed);
    E.Intra = true;
    Prev->Out.push_back(E);
  }
  if (Icd) {
    // Both calls are lock-free — the per-transaction hot path never
    // touches the detector lock. The intra edge targets a brand-new
    // maximal vertex, so it is consistent by construction; if Prev's
    // region is poisoned, the first search that reaches it through the
    // chain repairs the contact (IncrementalCycles.h).
    Icd->addNode(Tx);
    Icd->addChainEdge(Prev, Tx);
  }
  PT.CurrTx.store(Tx, std::memory_order_release);
  PT.CurTs.fetch_add(1, std::memory_order_relaxed);
  if (Regular)
    ++PT.RegularTxs;
  else
    ++PT.UnaryTxs;
  Governor.txCreated();
  if (PT.LogShedActive) {
    // Re-arm ladder: after RearmAfterTxs boundaries, resume logging iff
    // every governed gauge has fallen under half budget (hysteresis, so a
    // system hovering at the budget does not thrash shed/re-arm).
    if (PT.RearmCountdown > 0 && --PT.RearmCountdown == 0) {
      if (Governor.underLowWater()) {
        PT.LogShedActive = false;
        recordDegradation(
            {rt::DegradationEvent::Action::Rearm, Tid,
             OrderClock.load(std::memory_order_relaxed)});
      } else {
        PT.RearmCountdown = std::max(1u, Opts.RearmAfterTxs);
      }
    }
    // Still shedding: the new transaction's log is incomplete from birth.
    if (PT.LogShedActive)
      Tx->LogShed.store(true, std::memory_order_relaxed);
  }
  return Tx;
}

void DoubleCheckerRuntime::endCurrentTx(uint32_t Tid) {
  const uint32_t Shard = shardOf(Tid);
  lockShard(Shard, Tid);
  PerThread &PT = Threads[Tid];
  Transaction *Cur = PT.CurrTx.load(std::memory_order_relaxed);
  if (Cur == nullptr) {
    unlockShard(Shard);
    return;
  }
  Cur->EndTime = OrderClock.fetch_add(1, std::memory_order_relaxed) + 1;
  Cur->Finished.store(true, std::memory_order_release);
  // Root filter (see Transaction::HasCrossOut): only a transaction with an
  // outgoing cross edge at its end can be the claiming (maximal-EndTime)
  // member of a cycle, so only those are worth a detection pass. This is
  // what keeps Tarjan off the hot path — most conflicting transactions
  // only *receive* edges (the sources are usually long finished) and end
  // without ever becoming a root.
  const bool NeedScc =
      !PcdOnlyAnalysis && Opts.DetectIcdCycles && Icd == nullptr &&
      (Cur->HasCrossOut || (Opts.EagerSccRoots && Cur->HasCrossIn));
  unlockShard(Shard);
  // The follow-ups run without the own stripe. Cur is finished, so its log
  // and incoming-edge set are frozen: edges always target the *requesting*
  // thread's own current transaction, and this thread — the only one that
  // could name Cur as an edge destination — is here, not requesting.
  if (PcdOnlyAnalysis) {
    SpinLockGuard Guard(PcdOnlyLock);
    PcdOnlyAnalysis->processTransaction(Cur);
  }
  if (Icd) {
    // Incremental mode: observing the end is what can complete a cycle's
    // claim (last member to finish). No stripes are held here, so a claim
    // may block on PCD backpressure safely. Until retire returns, Cur is
    // still this thread's CurrTx — a strong collector root — so an
    // unclaimed component containing it cannot be swept.
    IncrementalCycleDetector::ClaimList Claims;
    Icd->retire(Cur, Claims);
    executeIcdClaims(Claims);
  } else if (NeedScc)
    pendSccRoot(Cur, Tid);
  if (Opts.Trace)
    Opts.Trace->instant("tx", Cur->Regular ? "tx-end" : "unary-end", Tid,
                        TraceRecorder::Args().num("id", Cur->Id));
  const uint64_t Finished =
      FinishedTxs.fetch_add(1, std::memory_order_relaxed) + 1;
  if (Opts.WindowTxs != 0 && Finished % Opts.WindowTxs == 0)
    // Streaming mode: this thread crossed a retirement-window boundary.
    // Exactly one thread observes each multiple of WindowTxs (fetch_add),
    // so the boundary election is deterministic per schedule. The flush
    // subsumes a collection, so the periodic trigger below is skipped.
    windowFlushNow(Tid);
  else if (Finished % Opts.CollectEveryTx == 0)
    requestCollect(Tid);
  else if (Opts.CollectEveryTx != ~0u &&
           (Governor.pressure() & PressureLiveTxs) != 0)
    // Live-transaction budget breached: collect now instead of waiting for
    // the periodic trigger. Collection is the correct relief valve here —
    // shedding would not free a single finished transaction.
    requestCollect(Tid);
}

void DoubleCheckerRuntime::addCrossEdgeLocked(Transaction *Src,
                                              Transaction *Dst,
                                              uint32_t Phys) {
  if (Src == nullptr || Dst == nullptr || Src == Dst)
    return;
  OutEdge E;
  E.Dst = Dst;
  E.Id = composeId(Src->Tid, ++Threads[Src->Tid].NextEdgeSeq);
  E.SrcPos = Src->LogLen.load(std::memory_order_acquire);
  E.Intra = false;
  Src->Out.push_back(E);
  Src->HasCrossOut = true;
  Dst->HasCrossIn = true;
  // Timestamp bumps end log-elision windows on both threads (§4).
  Threads[Src->Tid].CurTs.fetch_add(1, std::memory_order_relaxed);
  Threads[Dst->Tid].CurTs.fetch_add(1, std::memory_order_relaxed);
  // Edges interrupt unary-transaction merging.
  if (!Src->Regular)
    Src->Interrupted.store(true, std::memory_order_relaxed);
  if (!Dst->Regular)
    Dst->Interrupted.store(true, std::memory_order_relaxed);
  if (Opts.LogAccesses) {
    LogEntry Marker;
    Marker.K = LogEntry::Kind::EdgeIn;
    Marker.Obj = Src->Tid;
    Marker.Addr = E.SrcPos;
    Marker.SrcSeq = Src->SeqInThread;
    Marker.Time = OrderClock.fetch_add(1, std::memory_order_relaxed) + 1;
    if (Opts.LegacyLog) {
      Dst->appendLogLegacy(Marker);
      Threads[Phys].BytesLogged += sizeof(LogEntry);
    } else if (Transport == LogTransport::Ring) {
      // The marker rides the ring whole — both slots in one cell — so the
      // drain side materializes it atomically. The position assignment is
      // single-writer for the same reason the arena append is: the edge
      // writer holds Dst's stripe and Dst's owner is provably quiescent
      // (Octet), so nobody else advances Dst->LogLen concurrently.
      PerThread &Pub = Threads[Phys < NumThreads ? Phys : Dst->Tid];
      LogSlot S[2];
      S[0].A = Src->Tid;
      S[0].B = E.SrcPos;
      S[0].Meta = SlotTagEdgeIn | (Marker.SrcSeq << 2);
      S[1].Meta = Marker.Time;
      const uint32_t Pos = Dst->LogLen.load(std::memory_order_relaxed);
      if (ringPublish(Pub, Dst, Pos, S, 2)) {
        Dst->LogLen.store(Pos + 2, std::memory_order_release);
        Pub.BytesLogged += 2 * sizeof(LogSlot);
      } else {
        // The arena path's never-fail chunk fallback has no ring analogue
        // (blocking here would hold stripes indefinitely). Shedding Dst is
        // the sound replacement: its SCCs degrade to Potential.
        Dst->LogShed.store(true, std::memory_order_release);
      }
    } else {
      // The physical thread executing this call supplies the chunks; it
      // may differ from Dst's owner (requester-side edges), which is fine
      // because chunks have no owner affinity once linked into a log.
      Dst->appendLog(Marker, Phys < NumThreads
                                 ? &Threads[Phys].ChunkCache
                                 : nullptr);
      Threads[Phys < NumThreads ? Phys : Dst->Tid].BytesLogged +=
          2 * sizeof(LogSlot);
    }
  }
  CrossEdges.fetch_add(1, std::memory_order_relaxed);
  if (Opts.Trace)
    // TraceRecorder's lock is a leaf — safe under the endpoint stripes.
    Opts.Trace->instant("edge", "cross-edge", Src->Tid,
                        TraceRecorder::Args()
                            .num("src", Src->Id)
                            .num("dst", Dst->Id)
                            .num("dst_tid", Dst->Tid));
  if (Icd) {
    // The caller holds exactly the two endpoint stripes — the detector
    // adds only its own internal lock, never another stripe. A precise
    // claim cannot happen here (the edge's target is unfinished, so its
    // component has an unretired member); an oversized absorption can, and
    // its execution touches only innermost locks.
    IncrementalCycleDetector::ClaimList Claims;
    Icd->addEdge(Src, Dst, Claims);
    executeIcdClaims(Claims);
  }
}

//===----------------------------------------------------------------------===//
// SCC detection (Tarjan over finished transactions)
//===----------------------------------------------------------------------===//

void DoubleCheckerRuntime::pendSccRoot(Transaction *V, uint32_t Holder) {
  bool Flush;
  {
    SpinLockGuard Guard(PendingLock);
    PendingSccRoots.push_back(V);
    Flush = PendingSccRoots.size() >= Opts.SccBatch;
  }
  if (Flush)
    sccPass(Holder);
}

void DoubleCheckerRuntime::sccPass(uint32_t Holder) {
  // All stripes: freezes the whole IDG (every edge writer holds a stripe)
  // and serializes passes against each other and the collector. One freeze
  // serves the whole batch of roots. The pending list is swapped out only
  // *under* the stripes: the entries are what keeps undetected cycles
  // strongly rooted, so removing them while a collection could still run
  // would let it sweep the very transactions this pass is about to walk.
  lockAllShards(Holder);
  std::vector<Transaction *> Roots;
  {
    SpinLockGuard Guard(PendingLock);
    Roots.swap(PendingSccRoots);
  }
  if (Roots.empty()) {
    unlockAllShards();
    return;
  }
  const uint64_t Epoch = ++SccEpochCounter;
  for (Transaction *R : Roots)
    R->RootEpoch = Epoch;
  uint32_t NextIndex = 0;
  std::vector<Transaction *> TarjanStack;
  struct Frame {
    Transaction *Tx;
    size_t EdgeIdx;
  };
  std::vector<Frame> CallStack;
  std::vector<std::vector<Transaction *>> Detected;

  auto Visit = [&](Transaction *Tx) {
    Tx->SccEpoch = Epoch;
    Tx->SccIndex = Tx->SccLow = NextIndex++;
    Tx->OnStack = true;
    TarjanStack.push_back(Tx);
    CallStack.push_back(Frame{Tx, 0});
  };

  for (Transaction *R : Roots) {
    if (R->SccEpoch == Epoch)
      continue; // Already visited from an earlier root of this pass.
    Visit(R);
    while (!CallStack.empty()) {
      Frame &F = CallStack.back();
      if (F.EdgeIdx < F.Tx->Out.size()) {
        Transaction *Next = F.Tx->Out[F.EdgeIdx++].Dst;
        // Only expand finished transactions (§3.2.3): an unfinished
        // successor's cycle, if any, is incomplete and will trigger its
        // own detection when it ends.
        if (!Next->Finished.load(std::memory_order_acquire))
          continue;
        if (Next->SccEpoch != Epoch) {
          Visit(Next);
        } else if (Next->OnStack) {
          F.Tx->SccLow = std::min(F.Tx->SccLow, Next->SccIndex);
        }
        continue;
      }
      // Post-order: pop the frame; maybe pop a component.
      Transaction *Tx = F.Tx;
      CallStack.pop_back();
      if (!CallStack.empty())
        CallStack.back().Tx->SccLow =
            std::min(CallStack.back().Tx->SccLow, Tx->SccLow);
      if (Tx->SccLow != Tx->SccIndex)
        continue;
      // Tx is the root of a component; pop its members.
      std::vector<Transaction *> Members;
      for (;;) {
        Transaction *M = TarjanStack.back();
        TarjanStack.pop_back();
        M->OnStack = false;
        Members.push_back(M);
        if (M == Tx)
          break;
      }
      if (Members.size() < 2)
        continue;
      if (Opts.TestOnlyUnsoundFilter && Members.size() == 2)
        continue; // Injected unsoundness; see DoubleCheckerOptions.
      // Exactly-once across passes: a cycle is complete precisely when its
      // maximal-EndTime member finishes (edges only ever target unfinished
      // transactions, so no member edge postdates that end). That member
      // always passes the HasCrossOut root filter (see Transaction.h), and
      // every filtered transaction is a detection root of exactly one pass
      // — so the pass whose root set holds that member claims the
      // component. Earlier passes saw the cycle incomplete; later ones
      // skip it here.
      uint64_t MaxEnd = 0;
      Transaction *Last = nullptr;
      for (Transaction *M : Members)
        if (Last == nullptr || M->EndTime > MaxEnd) {
          MaxEnd = M->EndTime;
          Last = M;
        }
      if (Last->RootEpoch != Epoch)
        continue;
      SccCount.fetch_add(1, std::memory_order_relaxed);
      if (Opts.Trace)
        Opts.Trace->instant("scc", "scc-claim", Last->Tid,
                            TraceRecorder::Args()
                                .num("members", Members.size())
                                .num("stamp", MaxEnd));
      {
        SpinLockGuard Guard(SccStateLock);
        for (Transaction *M : Members) {
          if (M->Regular)
            SccSites.insert(M->Site);
          else
            SccAnyUnary = true;
        }
      }
      if (Pcd) {
        // Degradation ladder: SCCs the replay cannot handle precisely —
        // oversized (the paper's PCD ran out of memory on such
        // transactions) or containing a member whose log was shed — are
        // degraded here, under the stripes, to potential violations.
        // Sound because every true PDG cycle lies within an ICD SCC.
        bool Degrade = Members.size() > Opts.MaxSccTxsForPcd;
        for (size_t I = 0; !Degrade && I < Members.size(); ++I)
          Degrade = Members[I]->LogShed.load(std::memory_order_relaxed);
        if (Degrade) {
          degradeScc(Members, MaxEnd);
        } else {
          // Pin before releasing the stripes so the collector cannot sweep
          // members while the replay (inline or pooled) is in flight.
          for (Transaction *M : Members)
            M->Pins.fetch_add(1, std::memory_order_relaxed);
          Detected.push_back(std::move(Members));
        }
      }
    }
  }
  unlockAllShards();
  SccPasses.fetch_add(1, std::memory_order_relaxed);
  SccVisited.fetch_add(NextIndex, std::memory_order_relaxed);

  if (Detected.empty())
    return;
  // Ring transport: hand PCD only fully materialized logs; a component
  // whose drain stalls past the deadline degrades soundly instead.
  if (Ring) {
    size_t Kept = 0;
    for (size_t I = 0; I < Detected.size(); ++I) {
      std::vector<Transaction *> &Members = Detected[I];
      if (awaitLogComplete(Members)) {
        if (Kept != I)
          Detected[Kept] = std::move(Members);
        ++Kept;
      } else {
        uint64_t Stamp = 0;
        for (const Transaction *M : Members)
          Stamp = std::max(Stamp, M->EndTime);
        degradeScc(Members, Stamp);
        for (Transaction *M : Members)
          M->Pins.fetch_sub(1, std::memory_order_release);
      }
    }
    Detected.resize(Kept);
    if (Detected.empty())
      return;
  }
  if (AsyncPcd) {
    AsyncPcd->enqueueBatch(std::move(Detected));
  } else {
    for (std::vector<Transaction *> &Members : Detected) {
      Pcd->processScc(Members);
      for (Transaction *M : Members)
        M->Pins.fetch_sub(1, std::memory_order_release);
    }
  }
}

//===----------------------------------------------------------------------===//
// Incremental claim execution (IncrementalCycles.h)
//===----------------------------------------------------------------------===//

void DoubleCheckerRuntime::executeIcdClaims(
    IncrementalCycleDetector::ClaimList &Claims) {
  for (IncrementalCycleDetector::Claim &C : Claims) {
    std::vector<Transaction *> &Members = C.Members;
    const auto Unpin = [&Members] {
      for (Transaction *M : Members)
        M->Pins.fetch_sub(1, std::memory_order_release);
    };
    // Mirror sccPass's order exactly: the injected unsound filter drops a
    // two-member component before it reaches the site set, SccCount, or
    // PCD — in both modes, so the fuzzer's bug-detection differential sees
    // the same (broken) behaviour whichever detector is selected.
    if (!C.Oversized && Opts.TestOnlyUnsoundFilter && Members.size() == 2) {
      Unpin();
      continue;
    }
    // Sites feed multi-run mode's static info for every claim kind, just
    // like the batched pass accumulates them for every detected component.
    {
      SpinLockGuard Guard(SccStateLock);
      for (Transaction *M : Members) {
        if (M->Regular)
          SccSites.insert(M->Site);
        else
          SccAnyUnary = true;
      }
    }
    // Stamps: max member EndTime, like sccPass / degradeScc — but members
    // of an oversized absorption may still be running (EndTime unset).
    uint64_t MaxEnd = 0;
    bool Shed = false;
    for (Transaction *M : Members) {
      if (M->Finished.load(std::memory_order_acquire))
        MaxEnd = std::max(MaxEnd, M->EndTime);
      Shed |= M->LogShed.load(std::memory_order_relaxed);
    }
    if (C.Oversized) {
      // Region-cap degradation (DoubleCheckerOptions::IcdMaxRegion):
      // everything absorbed into a poisoned region is reported Potential.
      if (Pcd)
        degradeScc(Members, MaxEnd);
      Unpin();
      continue;
    }
    SccCount.fetch_add(1, std::memory_order_relaxed);
    if (Opts.Trace)
      Opts.Trace->instant("scc", "scc-claim", 0,
                          TraceRecorder::Args()
                              .num("members", Members.size())
                              .num("stamp", MaxEnd));
    if (!Pcd) {
      Unpin(); // First run of multi-run mode: sites were all it wanted.
      continue;
    }
    if (Members.size() > Opts.MaxSccTxsForPcd || Shed) {
      degradeScc(Members, MaxEnd);
      Unpin();
      continue;
    }
    if (!awaitLogComplete(Members)) {
      // Ring transport: a member's records never finished materializing
      // (drain stall, or a shed landed during the wait). Degrading is
      // sound; replaying an incomplete log would not be.
      degradeScc(Members, MaxEnd);
      Unpin();
      continue;
    }
    if (AsyncPcd) {
      // Ownership of the pins moves to the pool (a worker or the
      // degrade-on-timeout path unpins after the replay).
      std::vector<std::vector<Transaction *>> Batch;
      Batch.push_back(std::move(Members));
      AsyncPcd->enqueueBatch(std::move(Batch));
    } else {
      Pcd->processScc(Members);
      Unpin();
    }
  }
  Claims.clear();
}

uint32_t DoubleCheckerRuntime::stripesHeldByCurrentThread() const {
  return IdgShards ? IdgShards->heldCount(TlsPhysTid) : 0;
}

//===----------------------------------------------------------------------===//
// Ring log transport (DESIGN.md §13)
//===----------------------------------------------------------------------===//

bool DoubleCheckerRuntime::ringPublish(PerThread &PT, Transaction *Tx,
                                       uint32_t Pos, const LogSlot *S,
                                       uint32_t N) {
  if (PT.CpuHintCountdown == 0) {
    // Refresh the CPU hint. sched_getcpu is cheap but not free; every 64
    // commits tracks migrations closely enough — a stale hint only shares
    // a ring (every ring is MPMC), it cannot block or be blocked.
    const uint32_t Idx = Ring->ringFor(RingLog::currentCpu());
    if (PT.RingHintValid && Idx != PT.RingIdx)
      ++PT.RingMigrations;
    PT.RingIdx = Idx;
    PT.RingHintValid = true;
    PT.CpuHintCountdown = 64;
  }
  --PT.CpuHintCountdown;
  RingCommit RC = Ring->commit(PT.RingIdx, Tx, Pos, S, N);
  if (RC == RingCommit::Contended) {
    // Bounded CAS losses on the hinted ring — usually a stale hint racing
    // the ring's real producers. Hop to the neighbour once and re-probe
    // the hint at the next commit.
    PT.CpuHintCountdown = 0;
    RC = Ring->commit(Ring->ringFor(PT.RingIdx + 1), Tx, Pos, S, N);
  }
  if (RC == RingCommit::Ok) {
    ++PT.RingCommits;
    return true;
  }
  // Full (the consumer is a lap behind) or persistently contended: make
  // space ourselves, bounded — two drain-or-yield rounds, then let the
  // caller shed. Never an unbounded wait, never a silent drop.
  ++PT.RingFullEvents;
  for (int Round = 0; Round < 2; ++Round) {
    uint32_t Drained = 0;
    if (Ring->tryDrainAll(Drained))
      ++PT.RingSelfDrains;
    else
      std::this_thread::yield(); // Another consumer is already at it.
    RC = Ring->commit(PT.RingIdx, Tx, Pos, S, N);
    if (RC == RingCommit::Ok) {
      ++PT.RingCommits;
      return true;
    }
  }
  return false;
}

bool DoubleCheckerRuntime::awaitLogComplete(
    const std::vector<Transaction *> &Members) {
  if (!Ring)
    return true;
  // Members are finished and their claim synchronized with the owners'
  // final LogLen stores, so LogLen is exact here; DrainedSlots counts
  // materialized (or shed-accounted) slots and meets it exactly when every
  // record has been consumed.
  auto Incomplete = [&Members]() -> bool {
    for (const Transaction *M : Members)
      if (M->DrainedSlots.load(std::memory_order_acquire) <
          M->LogLen.load(std::memory_order_acquire))
        return true;
    return false;
  };
  auto AnyShed = [&Members]() -> bool {
    for (const Transaction *M : Members)
      if (M->LogShed.load(std::memory_order_acquire))
        return true;
    return false;
  };
  if (!Incomplete())
    return !AnyShed();
  // Help the drain rather than just waiting. The deadline turns a starved
  // drain (e.g. a producer descheduled mid-commit gapping a ring) into a
  // sound degradation instead of a hang.
  const auto Deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(std::max(1u, Opts.PcdStallTimeoutMs));
  YieldBackoff Backoff;
  while (Incomplete()) {
    if (AnyShed())
      return false;
    Ring->drainAll();
    if (!Incomplete())
      break;
    if (std::chrono::steady_clock::now() >= Deadline) {
      RingDrainStalls.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    // The caller is a gate-admitted program thread: while it waits here no
    // instruction retires, so beat the gate slot to keep the watchdog
    // pointed at the real culprit (the drain), not the gate.
    if (Dog)
      Dog->heartbeat(DogGateSlot);
    Backoff.pause();
  }
  return !AnyShed();
}

void DoubleCheckerRuntime::ringDrainLoop() {
  // Adaptive cadence: drain back-to-back while records flow, back off
  // exponentially (capped) while idle. Mutator self-drains cover the
  // window where this thread sleeps and rings fill faster than expected.
  uint32_t SleepUs = 50;
  while (!DrainerStop.load(std::memory_order_acquire)) {
    if (Dog)
      Dog->beginWork(DogDrainerSlot);
    const uint32_t Drained = Ring->drainAll();
    if (Dog)
      Dog->endWork(DogDrainerSlot);
    if (Drained != 0) {
      SleepUs = 50;
      continue;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(SleepUs));
    SleepUs = std::min(SleepUs * 2, 2000u);
  }
  // Final sweep: records committed after the last pass but before the
  // stop flag landed.
  Ring->drainAll();
}

//===----------------------------------------------------------------------===//
// Transaction collection (stands in for the JVM's GC)
//===----------------------------------------------------------------------===//

void DoubleCheckerRuntime::requestCollect(uint32_t Holder) {
  if (Collector)
    Collector->request();
  else
    collectNow(Holder);
}

void DoubleCheckerRuntime::collectBackpressure(uint32_t Tid) {
  if ((Governor.pressure() & PressureLiveTxs) == 0)
    return;
  // Live-transaction budget breached at a transaction boundary: request
  // collection and lend the collector this thread's cycles until the live
  // graph is back under budget. Without this, a mutator that never blocks
  // can starve the background collector outright (most visibly on few-core
  // hosts), and the lag feeds on itself: the live graph grows, so every
  // mark-sweep cycle walks more and falls further behind. The wait is
  // bounded and holds no stripes, so a wedged collector degrades
  // throughput, never liveness — the watchdog is what reports a genuinely
  // stuck collector.
  BackpressureWaits.fetch_add(1, std::memory_order_relaxed);
  requestCollect(Tid);
  // Wall-clock bound, not an iteration count: a yield's cost varies by
  // orders of magnitude with run-queue contention, and a wait long enough
  // to look like gate silence would trip the watchdog's stalled-gate abort.
  // 5 ms per boundary is far under any watchdog timeout and enough for a
  // lagging mark-sweep cycle to complete.
  const auto Deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(5);
  YieldBackoff Backoff;
  for (;;) {
    for (unsigned I = 0; I < 32; ++I) {
      if ((Governor.pressure() & PressureLiveTxs) == 0)
        return;
      Backoff.pause();
    }
    // The caller is a gate-admitted program thread: while it lends cycles
    // here no instruction retires, so beat the gate slot to keep the
    // watchdog pointed at the real culprit (the collector), not the gate.
    if (Dog)
      Dog->heartbeat(DogGateSlot);
    if (std::chrono::steady_clock::now() >= Deadline)
      return;
  }
}

void DoubleCheckerRuntime::collectNow(uint32_t Holder) {
  auto Start = std::chrono::steady_clock::now();
  std::vector<Transaction *> Doomed;
  lockAllShards(Holder);
  const uint64_t Epoch = ++MarkEpochCounter;
  std::vector<Transaction *> Work;
  auto AddRoot = [&](Transaction *Tx) {
    if (Tx != nullptr && Tx->MarkEpoch != Epoch) {
      Tx->MarkEpoch = Epoch;
      Work.push_back(Tx);
    }
  };
  // Strong roots: the unfinished transactions. Everything a future Tarjan
  // walk can visit is forward-reachable from one of them — every edge ever
  // added terminates at a transaction that was current (unfinished) when
  // the edge was created, so no path from the live region leads backward
  // into transactions that finished unreachable.
  for (uint32_t T = 0; T < NumThreads; ++T)
    AddRoot(Threads[T].CurrTx.load(std::memory_order_relaxed));
  // Pending detection roots are strong too: a cycle whose members all
  // finished is no longer reachable from any current transaction, but its
  // batched Tarjan pass has not run yet — members are mutually reachable,
  // so rooting the pending member keeps the whole component alive until
  // the pass claims and pins it.
  {
    SpinLockGuard Guard(PendingLock);
    for (Transaction *R : PendingSccRoots)
      AddRoot(R);
  }
  while (!Work.empty()) {
    Transaction *Tx = Work.back();
    Work.pop_back();
    for (const OutEdge &E : Tx->Out)
      AddRoot(E.Dst);
  }
  // Weak roots: lastRdEx / gLastRdSh may still become *sources* of future
  // edges, so the nodes themselves must survive — but their stale forward
  // closures need not: a cycle through such a node would need an edge from
  // the live region into it, which can never be created. Marking them
  // after the traversal (without enqueueing) keeps the node and lets its
  // unreachable successors be swept; their Out lists then hold dangling
  // pointers, which is fine because only this mark phase ever walks the
  // Out edges of a transaction that is not strongly reachable.
  auto WeakRoot = [&](Transaction *Tx) {
    if (Tx != nullptr)
      Tx->MarkEpoch = Epoch;
  };
  for (uint32_t T = 0; T < NumThreads; ++T)
    WeakRoot(Threads[T].LastRdEx);
  WeakRoot(GLastRdSh);
  // Ring transport: records still in flight reference their transactions;
  // mark them so the sweep cannot free a transaction whose record the
  // drain side has yet to materialize. The peek sees every such record for
  // a *finished* transaction — access publishes precede the owner's
  // endCurrentTx (which takes its stripe, ordered before this pass's
  // all-stripe freeze) and EdgeIn publishes happen under stripes — while
  // records it can miss (published concurrently, no stripe held) can only
  // belong to current transactions, which are strong roots above.
  if (Ring)
    Ring->peekPublished([&](Transaction *Tx) { Tx->MarkEpoch = Epoch; });
  // Sweep: a finished transaction not forward-reachable from any root can
  // never gain another edge (edge sinks are current transactions; edge
  // sources are roots), so it cannot join a future cycle. Unreachable also
  // stays unreachable once the stripes drop, and un-pinned stays un-pinned
  // (detections only pin root-reachable members), so the frees can happen
  // outside the stripes.
  uint64_t Live = 0;
  for (uint32_t T = 0; T < NumThreads; ++T) {
    PerThread &PT = Threads[T];
    size_t Kept = 0;
    for (size_t I = 0; I < PT.Owned.size(); ++I) {
      Transaction *Tx = PT.Owned[I];
      if (Tx->MarkEpoch == Epoch ||
          Tx->Pins.load(std::memory_order_acquire) != 0) {
        PT.Owned[Kept++] = Tx;
      } else {
        assert(Tx->Finished.load(std::memory_order_relaxed) &&
               "sweeping a live transaction");
        Doomed.push_back(Tx);
      }
    }
    PT.Owned.resize(Kept);
    Live += Kept;
  }
  // Doomed transactions must vacate the incremental detector's order while
  // the graph is still frozen and before anything is freed: unlink their
  // detector adjacency and group membership so no later search touches a
  // dangling node. Dropping vertices cannot invalidate the remaining
  // topological order, and a swept (unreachable, finished) transaction can
  // never rejoin a cycle.
  if (Icd)
    Icd->removeNodes(Doomed);
  unlockAllShards();
  uint64_t PrevMax = CollectorLiveMax.load(std::memory_order_relaxed);
  while (Live > PrevMax && !CollectorLiveMax.compare_exchange_weak(
                               PrevMax, Live, std::memory_order_relaxed))
    ;
  for (Transaction *Tx : Doomed) {
    // Recycle the dead log's chunks before freeing the node; future logs
    // then append into recycled storage instead of allocating.
    Tx->Log.releaseTo(ChunkPool);
    delete Tx;
  }
  TxsSwept.fetch_add(Doomed.size(), std::memory_order_relaxed);
  Governor.txsFreed(Doomed.size());
  CollectorRuns.fetch_add(1, std::memory_order_relaxed);
  CollectorNs.fetch_add(
      static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - Start)
              .count()),
      std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Overload and fault health (DESIGN.md §10)
//===----------------------------------------------------------------------===//

void DoubleCheckerRuntime::recordFault(rt::CheckerFault F,
                                       std::string Diagnosis) {
  Stats.get("faults.detected").add(1);
  bool First = false;
  {
    SpinLockGuard Guard(HealthLock);
    // First fault wins: the earliest diagnosis names the root cause; later
    // faults are usually its downstream symptoms.
    if (Fault == rt::CheckerFault::None) {
      Fault = F;
      FaultDiagnosis = Diagnosis;
      First = true;
    }
  }
  if (First) {
    if (Opts.Trace)
      Opts.Trace->instant("fault", toString(F), 0,
                          TraceRecorder::Args().str("diagnosis", Diagnosis));
    // Streaming observer (no checker lock held: the hook may take its
    // own stream lock and do I/O).
    if (Opts.FaultHook)
      Opts.FaultHook(F, Diagnosis);
  }
}

void DoubleCheckerRuntime::recordDegradation(rt::DegradationEvent E) {
  SpinLockGuard Guard(HealthLock);
  DegEvents.push_back(E);
}

void DoubleCheckerRuntime::beginShed(PerThread &PT, uint32_t Tid,
                                     Transaction *Cur) {
  PT.LogShedActive = true;
  PT.RearmCountdown = std::max(1u, Opts.RearmAfterTxs);
  ++PT.ShedCount;
  ++PT.LogDropped; // The access that hit the refused refill is dropped too.
  Cur->LogShed.store(true, std::memory_order_relaxed);
  recordDegradation({rt::DegradationEvent::Action::ShedLogging, Tid,
                     OrderClock.load(std::memory_order_relaxed)});
  if (Opts.Trace)
    Opts.Trace->instant("degrade", "shed-logging", Tid);
}

void DoubleCheckerRuntime::degradeScc(
    const std::vector<Transaction *> &Members, uint64_t Stamp) {
  // Pcd always exists on these paths: degradation is only reachable from
  // sccPass (guarded by Pcd) and the pool (which holds a Pcd reference).
  Pcd->reportPotential(Members);
  recordDegradation(
      {rt::DegradationEvent::Action::PotentialOnly, 0, Stamp});
  if (Opts.Trace)
    Opts.Trace->instant("degrade", "potential-only", 0,
                        TraceRecorder::Args()
                            .num("members", Members.size())
                            .num("stamp", Stamp));
}

void DoubleCheckerRuntime::onComponentStall(const std::string &Component,
                                            uint64_t SilentMs) {
  rt::CheckerFault F = rt::CheckerFault::GateStall;
  if (Component.rfind("pcd-worker", 0) == 0)
    F = rt::CheckerFault::PcdWorkerStall;
  else if (Component == "collector")
    F = rt::CheckerFault::CollectorStall;
  else if (Component == "ring-drainer")
    F = rt::CheckerFault::RingDrainStall;
  else if (Component == "window-flush")
    F = rt::CheckerFault::WindowFlushStall;
  recordFault(F, Component + " made no progress for " +
                     std::to_string(SilentMs) + " ms");
  // A stalled PCD worker, collector, or window flush only delays analysis
  // — the run can finish and the drains are timed. A stalled gate means no
  // program thread is retiring instructions: the run itself is wedged, so
  // convert the hang into a structured abort.
  if (F == rt::CheckerFault::GateStall && TheRT != nullptr)
    TheRT->requestAbort();
}

void DoubleCheckerRuntime::reportHealth(rt::RunResult &R) {
  SpinLockGuard Guard(HealthLock);
  R.Fault = Fault;
  R.FaultDiagnosis = FaultDiagnosis;
  R.Degradation = DegEvents;
  // Deterministic order for cross-config comparison: events are stamped
  // with OrderClock values (shed/re-arm) or max member EndTime (degrade),
  // both schedule-determined, but the recording order is not.
  std::sort(R.Degradation.begin(), R.Degradation.end(),
            [](const rt::DegradationEvent &A, const rt::DegradationEvent &B) {
              if (A.Stamp != B.Stamp)
                return A.Stamp < B.Stamp;
              if (A.A != B.A)
                return static_cast<uint8_t>(A.A) < static_cast<uint8_t>(B.A);
              return A.Tid < B.Tid;
            });
}

//===----------------------------------------------------------------------===//
// Streaming service mode: windowed retirement (DESIGN.md §15)
//===----------------------------------------------------------------------===//

void DoubleCheckerRuntime::fillHealth(rt::HealthSnapshot &H) {
  H.WindowIndex = Governor.windowsFlushed();
  H.FinishedTxs = FinishedTxs.load(std::memory_order_relaxed);
  H.LiveTxs = Governor.liveTxs();
  H.RetiredTxs = TxsSwept.load(std::memory_order_relaxed);
  H.PinnedTxs = Governor.windowPinnedLast();
  H.CrossEdges = CrossEdges.load(std::memory_order_relaxed);
  H.Violations = Violations.count();
  {
    SpinLockGuard Guard(HealthLock);
    H.Degradations = DegEvents.size();
    H.Fault = Fault;
    H.FaultDiagnosis = FaultDiagnosis;
  }
  StatisticRegistry::Snapshot Snap = Stats.snapshot();
  H.StatsStable = Snap.Stable;
  H.Stats = std::move(Snap.Values);
}

void DoubleCheckerRuntime::healthSnapshot(rt::HealthSnapshot &H) {
  fillHealth(H);
}

bool DoubleCheckerRuntime::windowFlush() {
  return windowFlushNow(HolderCollector);
}

bool DoubleCheckerRuntime::windowFlushNow(uint32_t Holder) {
  // Two threads can cross consecutive boundaries while the first flush is
  // still draining; serialize whole flushes so the second sees (and
  // retires) the first's results instead of interleaving with them.
  std::lock_guard<std::mutex> WindowGuard(WindowMu);
  const uint64_t Nth =
      WindowFlushCounter.fetch_add(1, std::memory_order_relaxed) + 1;
  const uint64_t T0 = Opts.Trace ? Opts.Trace->nowUs() : 0;
  if (Dog)
    Dog->beginWork(DogWindowSlot);
  if (Nth == Opts.Faults.WindowStallAt && Dog) {
    // Injected wedged flush: park busy-and-silent on the window slot until
    // the watchdog converts the stall into a structured WindowFlushStall,
    // then complete the flush normally (faults degrade observability,
    // never the run). The gate stays beaten — the program is healthy, only
    // this boundary is stuck — so the fault classification is
    // deterministic, not a race against GateStall.
    const auto Deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(2 * std::max(1u, Opts.PcdStallTimeoutMs) +
                                  50u * std::max(1u, Opts.WatchdogPollMs) +
                                  200u);
    for (;;) {
      {
        SpinLockGuard Guard(HealthLock);
        if (Fault != rt::CheckerFault::None)
          break;
      }
      if (std::chrono::steady_clock::now() >= Deadline)
        break;
      Dog->heartbeat(DogGateSlot);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  size_t DegBefore;
  {
    SpinLockGuard Guard(HealthLock);
    DegBefore = DegEvents.size();
  }
  // Stage 1 — decide everything decidable as of the boundary. Batched mode
  // claims pending roots now instead of waiting for a full SccBatch;
  // incremental mode has nothing pending (cycles are claimed at their last
  // member's retire, so mid-run there is no deferred detection state — and
  // Icd->finalize must NOT run here, it assumes end-of-run quiescence).
  if (Icd == nullptr && !PcdOnlyAnalysis && Opts.DetectIcdCycles &&
      IdgShards != nullptr)
    sccPass(Holder);
  if (Dog) {
    Dog->heartbeat(DogWindowSlot);
    Dog->heartbeat(DogGateSlot);
  }
  // Stage 2 — materialize every published log record, so stage 3's replays
  // never wait on the drain and the collector's in-flight marks are empty.
  if (Ring)
    Ring->drainAll();
  if (Dog) {
    Dog->heartbeat(DogWindowSlot);
    Dog->heartbeat(DogGateSlot);
  }
  // Stage 3 — complete in-flight precise replays for cycles wholly inside
  // the retiring window. A healthy pool drains without degrading anything
  // (the replays happen either way — only their completion moves inside
  // the boundary), which is what keeps the streamed verdict set equal to
  // batch mode's. Only a wedged pool times out, and then the steal-and-
  // degrade path turns the hang into Potential records + a fault.
  if (AsyncPcd)
    AsyncPcd->drain();
  if (Dog) {
    Dog->heartbeat(DogWindowSlot);
    Dog->heartbeat(DogGateSlot);
  }
  // Stage 4 — sound retirement: mark-sweep over {current txs, pending
  // detection roots, pins, in-flight ring records}. Everything the sweep
  // keeps is exactly the cross-window state that cannot yet be proven
  // cycle-free (still running, strongly reachable from a runner, or pinned
  // by a replay) — those transactions are carried into the next window;
  // nothing is silently dropped (DESIGN.md §15's soundness argument).
  collectNow(Holder);
  const uint64_t Pinned = Governor.liveTxs();
  Governor.windowFlushed(Pinned);
  if (Dog)
    Dog->endWork(DogWindowSlot);
  // A flush is "clean" when no stage moved work down the degradation
  // ladder. Concurrent sheds on other threads can land in the scan window
  // and mis-flag a clean flush — acceptable: the flag is a health signal,
  // and both outcomes are sound. Re-arms are recoveries, not degradations.
  bool Clean = true;
  {
    SpinLockGuard Guard(HealthLock);
    for (size_t I = DegBefore; I < DegEvents.size(); ++I)
      if (DegEvents[I].A != rt::DegradationEvent::Action::Rearm)
        Clean = false;
  }
  if (!Clean)
    WindowDegraded.fetch_add(1, std::memory_order_relaxed);
  if (Opts.Trace)
    Opts.Trace->complete("window", "window-flush", 0, T0,
                         Opts.Trace->nowUs() - T0,
                         TraceRecorder::Args()
                             .num("window", Governor.windowsFlushed())
                             .num("pinned", Pinned)
                             .num("clean", Clean ? 1 : 0));
  if (Opts.WindowHook) {
    rt::HealthSnapshot H;
    fillHealth(H);
    Opts.WindowHook(H);
  }
  return Clean;
}

StaticTransactionInfo DoubleCheckerRuntime::staticInfo() {
  // Make the accumulated site set complete as of the snapshot: batched
  // mode claims any cycles whose roots are still pending; incremental mode
  // has already claimed everything at retire time, so finalize is a
  // defensive no-op sweep.
  if (Icd) {
    IncrementalCycleDetector::ClaimList Claims;
    Icd->finalize(Claims);
    executeIcdClaims(Claims);
  } else if (IdgShards) {
    sccPass(HolderCollector);
  }
  SpinLockGuard Guard(SccStateLock);
  StaticTransactionInfo Info;
  Info.AnyUnary = SccAnyUnary;
  for (ir::MethodId Site : SccSites)
    if (Site != ir::InvalidMethodId)
      Info.MethodNames.insert(P.Methods[Site].Name);
  return Info;
}
