//===- analysis/DoubleChecker.cpp -----------------------------------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/DoubleChecker.h"

#include <cassert>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

using namespace dc;
using namespace dc::analysis;

/// Background PCD worker (parallel-PCD extension, §5.3 future work):
/// consumes queued SCCs; members are pinned while queued.
class DoubleCheckerRuntime::AsyncPcdWorker {
public:
  explicit AsyncPcdWorker(PreciseCycleDetector &Pcd) : Pcd(Pcd) {
    Worker = std::thread([this] { run(); });
  }

  ~AsyncPcdWorker() {
    {
      std::lock_guard<std::mutex> L(M);
      Stop = true;
    }
    CV.notify_all();
    Worker.join();
  }

  /// Enqueues an SCC; every member gains a pin released after replay.
  void enqueue(std::vector<Transaction *> Members) {
    for (Transaction *Tx : Members)
      Tx->Pins.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> L(M);
      Queue.push_back(std::move(Members));
    }
    CV.notify_one();
  }

  /// Blocks until every queued SCC has been processed.
  void drain() {
    std::unique_lock<std::mutex> L(M);
    Idle.wait(L, [this] { return Queue.empty() && !Busy; });
  }

private:
  void run() {
    std::unique_lock<std::mutex> L(M);
    for (;;) {
      CV.wait(L, [this] { return Stop || !Queue.empty(); });
      if (Queue.empty() && Stop)
        return;
      std::vector<Transaction *> Members = std::move(Queue.front());
      Queue.pop_front();
      Busy = true;
      L.unlock();
      Pcd.processScc(Members);
      for (Transaction *Tx : Members)
        Tx->Pins.fetch_sub(1, std::memory_order_release);
      L.lock();
      Busy = false;
      if (Queue.empty())
        Idle.notify_all();
    }
  }

  PreciseCycleDetector &Pcd;
  std::mutex M;
  std::condition_variable CV;
  std::condition_variable Idle;
  std::deque<std::vector<Transaction *>> Queue;
  bool Stop = false;
  bool Busy = false;
  std::thread Worker;
};

namespace {

/// Elision cell packing: tid (16 bits) | wasWrite (1) | ts (47).
uint64_t packCell(uint32_t Tid, bool WasWrite, uint64_t Ts) {
  return (static_cast<uint64_t>(Tid) << 48) |
         (static_cast<uint64_t>(WasWrite) << 47) |
         (Ts & ((1ULL << 47) - 1));
}
uint32_t cellTid(uint64_t Cell) { return static_cast<uint32_t>(Cell >> 48); }
bool cellWasWrite(uint64_t Cell) { return (Cell >> 47) & 1; }
uint64_t cellTs(uint64_t Cell) { return Cell & ((1ULL << 47) - 1); }

} // namespace

DoubleCheckerRuntime::DoubleCheckerRuntime(const ir::Program &P,
                                           DoubleCheckerOptions Opts,
                                           ViolationLog &Violations,
                                           StatisticRegistry &Stats)
    : P(P), Opts(Opts), Violations(Violations), Stats(Stats) {
  if (Opts.PcdOnly) {
    this->Opts.LogAccesses = true;
    this->Opts.RunPcd = false;
    // The persistent precise state pins transactions; never sweep.
    this->Opts.CollectEveryTx = ~0u;
    PcdOnlyAnalysis = std::make_unique<OnlinePcd>(Violations, Stats);
    return;
  }
  if (Opts.RunPcd) {
    PreciseCycleDetector::Options PcdOpts;
    PcdOpts.MaxSccTxs = Opts.MaxSccTxsForPcd;
    Pcd = std::make_unique<PreciseCycleDetector>(Violations, Stats, PcdOpts);
  }
}

DoubleCheckerRuntime::~DoubleCheckerRuntime() {
  // Stop the async PCD worker before freeing the transactions it may still
  // be replaying.
  AsyncPcd.reset();
  for (uint32_t T = 0; T < NumThreads; ++T)
    for (Transaction *Tx : Threads[T].Owned)
      delete Tx;
}

void DoubleCheckerRuntime::beginRun(rt::Runtime &RT) {
  NumThreads = RT.numThreads();
  Threads = std::make_unique<PerThread[]>(NumThreads);
  Octet = std::make_unique<octet::OctetManager>(
      RT.heap(), NumThreads, this, Stats, &RT.abortFlag());
  if (Opts.ParallelPcd && Pcd)
    AsyncPcd = std::make_unique<AsyncPcdWorker>(*Pcd);
  if (Opts.LogAccesses) {
    ElisionCells = std::vector<std::atomic<uint64_t>>(
        RT.heap().numFieldAddrs());
    CellContended.assign(RT.heap().numFieldAddrs(), 0);
  }
}

void DoubleCheckerRuntime::endRun(rt::Runtime &RT) {
  if (AsyncPcd)
    AsyncPcd->drain();
  Octet->flushStatistics();
  uint64_t Regular = 0, Unary = 0, AccR = 0, AccU = 0, LogN = 0, LogE = 0;
  for (uint32_t T = 0; T < NumThreads; ++T) {
    const PerThread &PT = Threads[T];
    Regular += PT.RegularTxs;
    Unary += PT.UnaryTxs;
    AccR += PT.AccRegular;
    AccU += PT.AccUnary;
    LogN += PT.LogEntries;
    LogE += PT.LogElided;
  }
  Stats.get("icd.regular_transactions").add(Regular);
  Stats.get("icd.unary_transactions").add(Unary);
  Stats.get("icd.instrumented_accesses_regular").add(AccR);
  Stats.get("icd.instrumented_accesses_unary").add(AccU);
  Stats.get("icd.log_entries").add(LogN);
  Stats.get("icd.log_entries_elided").add(LogE);
  SpinLockGuard Guard(IdgLock);
  Stats.get("icd.idg_cross_edges").add(CrossEdges);
  Stats.get("icd.sccs").add(SccCount);
  Stats.get("icd.collector_runs").add(CollectorRuns);
  Stats.get("icd.collector_ns").add(CollectorNs);
  Stats.get("icd.txs_swept").add(TxsSwept);
}

void DoubleCheckerRuntime::threadStarted(rt::ThreadContext &TC) {
  Octet->threadStarted(TC.Tid);
  SpinLockGuard Guard(IdgLock);
  newTransactionLocked(TC.Tid, ir::InvalidMethodId, /*Regular=*/false);
}

void DoubleCheckerRuntime::threadExiting(rt::ThreadContext &TC) {
  {
    SpinLockGuard Guard(IdgLock);
    endCurrentTxLocked(TC.Tid);
    // CurrTx intentionally stays on the (finished) final transaction: a
    // conflicting transition can still name this thread as its responder
    // (its objects keep their WrEx/RdEx states after exit), and the edge
    // source must then be the thread's last transaction — nulling it here
    // would silently drop those edges.
  }
  Octet->threadExited(TC.Tid);
}

void DoubleCheckerRuntime::txBegin(rt::ThreadContext &TC,
                                   const ir::Method &M) {
  SpinLockGuard Guard(IdgLock);
  endCurrentTxLocked(TC.Tid);
  newTransactionLocked(TC.Tid, P.originalOf(M.Id), /*Regular=*/true);
}

void DoubleCheckerRuntime::txEnd(rt::ThreadContext &TC, const ir::Method &M) {
  // §4: at method end, a new unary transaction begins.
  SpinLockGuard Guard(IdgLock);
  endCurrentTxLocked(TC.Tid);
  newTransactionLocked(TC.Tid, ir::InvalidMethodId, /*Regular=*/false);
}

Transaction *DoubleCheckerRuntime::currentForAccess(rt::ThreadContext &TC) {
  PerThread &PT = Threads[TC.Tid];
  Transaction *Cur = PT.CurrTx.load(std::memory_order_relaxed);
  assert(Cur && "access outside any transaction context");
  if (Cur->Regular || !Cur->Interrupted.load(std::memory_order_relaxed))
    return Cur;
  // The merged unary transaction was interrupted by a cross-thread edge;
  // end it and start a fresh one (§4's merge optimization boundary).
  SpinLockGuard Guard(IdgLock);
  endCurrentTxLocked(TC.Tid);
  return newTransactionLocked(TC.Tid, ir::InvalidMethodId,
                              /*Regular=*/false);
}

void DoubleCheckerRuntime::instrumentedAccess(rt::ThreadContext &TC,
                                              const rt::AccessInfo &Info,
                                              function_ref<void()> Access) {
  PerThread &PT = Threads[TC.Tid];
  Transaction *Cur = currentForAccess(TC);
  if (Info.Flags & ir::IF_OctetBarrier) {
    if (Info.IsWrite)
      Octet->writeBarrier(TC, Info.Obj);
    else
      Octet->readBarrier(TC, Info.Obj);
  }
  Access();
  if (Opts.LogAccesses && (Info.Flags & ir::IF_LogAccess))
    logAccess(TC, Cur, Info);
  if (Cur->Regular)
    ++PT.AccRegular;
  else
    ++PT.AccUnary;
}

void DoubleCheckerRuntime::logAccess(rt::ThreadContext &TC, Transaction *Cur,
                                     const rt::AccessInfo &Info) {
  PerThread &PT = Threads[TC.Tid];
  std::atomic<uint64_t> &CellA = ElisionCells[Info.Addr];
  uint64_t Cell = CellA.load(std::memory_order_relaxed);
  uint64_t MyTs = PT.CurTs.load(std::memory_order_relaxed);
  if (cellTid(Cell) == TC.Tid && cellTs(Cell) == MyTs &&
      (cellWasWrite(Cell) || !Info.IsWrite)) {
    // Duplicate with no intervening edge or transaction boundary: elide.
    ++PT.LogElided;
    return;
  }
  LogEntry E;
  E.K = Info.IsWrite ? LogEntry::Kind::Write : LogEntry::Kind::Read;
  E.Obj = Info.Obj;
  E.Addr = Info.Addr;
  Cur->appendLog(E);
  ++PT.LogEntries;
  if (Opts.LogRemoteMissPenalty != 0) {
    // Remote-miss simulation for the elision cell rewrite (see
    // DoubleCheckerOptions::LogRemoteMissPenalty).
    if (Cell != 0 && cellTid(Cell) != TC.Tid)
      CellContended[Info.Addr] = 1;
    if (CellContended[Info.Addr]) {
      uint64_t Acc = Info.Addr;
      for (uint32_t I = 0; I < Opts.LogRemoteMissPenalty; ++I)
        Acc = Acc * 6364136223846793005ULL + 1442695040888963407ULL;
      PenaltySink.fetch_add(Acc, std::memory_order_relaxed);
    }
  }
  CellA.store(packCell(TC.Tid, Info.IsWrite, MyTs),
              std::memory_order_relaxed);
}

void DoubleCheckerRuntime::syncOp(rt::ThreadContext &TC,
                                  const rt::AccessInfo &Info,
                                  rt::SyncKind Kind) {
  if (Info.Flags == ir::IF_None)
    return;
  // Acquire-like ops behave as reads, release-like as writes, on the
  // synchronized object (already encoded in Info by the runtime).
  instrumentedAccess(TC, Info, [] {});
}

void DoubleCheckerRuntime::safePoint(rt::ThreadContext &TC) {
  Octet->pollSafePoint(TC.Tid);
}

void DoubleCheckerRuntime::aboutToBlock(rt::ThreadContext &TC) {
  Octet->aboutToBlock(TC.Tid);
}

void DoubleCheckerRuntime::unblocked(rt::ThreadContext &TC) {
  Octet->unblocked(TC.Tid);
}

//===----------------------------------------------------------------------===//
// Octet listener: Figure 4 edge creation
//===----------------------------------------------------------------------===//

void DoubleCheckerRuntime::onConflictingEdge(uint32_t RespTid,
                                             const octet::Transition &T) {
  SpinLockGuard Guard(IdgLock);
  Transaction *Src =
      Threads[RespTid].CurrTx.load(std::memory_order_relaxed);
  Transaction *Dst =
      Threads[T.Requester].CurrTx.load(std::memory_order_relaxed);
  addCrossEdgeLocked(Src, Dst);
}

void DoubleCheckerRuntime::onBecameRdEx(uint32_t Tid) {
  SpinLockGuard Guard(IdgLock);
  Threads[Tid].LastRdEx = Threads[Tid].CurrTx.load(std::memory_order_relaxed);
}

void DoubleCheckerRuntime::onUpgradeToRdSh(uint32_t Tid, uint32_t OldOwner,
                                           uint64_t Counter) {
  SpinLockGuard Guard(IdgLock);
  Transaction *Cur = Threads[Tid].CurrTx.load(std::memory_order_relaxed);
  // Edge from the old owner's last transition into RdEx (conservative
  // source for the write-read dependence being upgraded over).
  addCrossEdgeLocked(Threads[OldOwner].LastRdEx, Cur);
  // Edge ordering all transitions to RdSh (needed so fence transitions
  // capture write-read dependences transitively, Fig. 3).
  addCrossEdgeLocked(GLastRdSh, Cur);
  GLastRdSh = Cur;
}

void DoubleCheckerRuntime::onFence(uint32_t Tid) {
  SpinLockGuard Guard(IdgLock);
  addCrossEdgeLocked(GLastRdSh,
                     Threads[Tid].CurrTx.load(std::memory_order_relaxed));
}

//===----------------------------------------------------------------------===//
// IDG maintenance (all under IdgLock)
//===----------------------------------------------------------------------===//

Transaction *DoubleCheckerRuntime::newTransactionLocked(uint32_t Tid,
                                                        ir::MethodId Site,
                                                        bool Regular) {
  PerThread &PT = Threads[Tid];
  auto *Tx = new Transaction(++NextTxId, Tid, PT.NextSeq++, Site, Regular);
  {
    SpinLockGuard Guard(PT.OwnedLock);
    PT.Owned.push_back(Tx);
  }
  Transaction *Prev = PT.CurrTx.load(std::memory_order_relaxed);
  if (Prev != nullptr) {
    OutEdge E;
    E.Dst = Tx;
    E.Id = ++NextEdgeId;
    E.SrcPos = Prev->LogLen.load(std::memory_order_relaxed);
    E.Intra = true;
    Prev->Out.push_back(E);
  }
  PT.CurrTx.store(Tx, std::memory_order_release);
  PT.CurTs.fetch_add(1, std::memory_order_relaxed);
  if (Regular)
    ++PT.RegularTxs;
  else
    ++PT.UnaryTxs;
  return Tx;
}

void DoubleCheckerRuntime::endCurrentTxLocked(uint32_t Tid) {
  PerThread &PT = Threads[Tid];
  Transaction *Cur = PT.CurrTx.load(std::memory_order_relaxed);
  if (Cur == nullptr)
    return;
  Cur->EndTime = ++OrderClock;
  Cur->Finished.store(true, std::memory_order_release);
  if (PcdOnlyAnalysis)
    PcdOnlyAnalysis->processTransaction(Cur);
  else if (Cur->HasCrossEdge && Opts.DetectIcdCycles)
    sccFromLocked(Cur);
  if (++FinishedTxs % Opts.CollectEveryTx == 0)
    collectLocked();
}

void DoubleCheckerRuntime::addCrossEdgeLocked(Transaction *Src,
                                              Transaction *Dst) {
  if (Src == nullptr || Dst == nullptr || Src == Dst)
    return;
  OutEdge E;
  E.Dst = Dst;
  E.Id = ++NextEdgeId;
  E.SrcPos = Src->LogLen.load(std::memory_order_acquire);
  E.Intra = false;
  Src->Out.push_back(E);
  Src->HasCrossEdge = true;
  Dst->HasCrossEdge = true;
  // Timestamp bumps end log-elision windows on both threads (§4).
  Threads[Src->Tid].CurTs.fetch_add(1, std::memory_order_relaxed);
  Threads[Dst->Tid].CurTs.fetch_add(1, std::memory_order_relaxed);
  // Edges interrupt unary-transaction merging.
  if (!Src->Regular)
    Src->Interrupted.store(true, std::memory_order_relaxed);
  if (!Dst->Regular)
    Dst->Interrupted.store(true, std::memory_order_relaxed);
  if (Opts.LogAccesses) {
    LogEntry Marker;
    Marker.K = LogEntry::Kind::EdgeIn;
    Marker.Obj = Src->Tid;
    Marker.Addr = E.SrcPos;
    Marker.SrcSeq = Src->SeqInThread;
    Marker.Time = ++OrderClock;
    Dst->appendLog(Marker);
  }
  ++CrossEdges;
}

//===----------------------------------------------------------------------===//
// SCC detection (Tarjan over finished transactions)
//===----------------------------------------------------------------------===//

void DoubleCheckerRuntime::sccFromLocked(Transaction *V) {
  const uint64_t Epoch = ++SccEpochCounter;
  uint32_t NextIndex = 0;
  std::vector<Transaction *> TarjanStack;
  struct Frame {
    Transaction *Tx;
    size_t EdgeIdx;
  };
  std::vector<Frame> CallStack;

  auto Visit = [&](Transaction *Tx) {
    Tx->SccEpoch = Epoch;
    Tx->SccIndex = Tx->SccLow = NextIndex++;
    Tx->OnStack = true;
    TarjanStack.push_back(Tx);
    CallStack.push_back(Frame{Tx, 0});
  };
  Visit(V);

  while (!CallStack.empty()) {
    Frame &F = CallStack.back();
    if (F.EdgeIdx < F.Tx->Out.size()) {
      Transaction *Next = F.Tx->Out[F.EdgeIdx++].Dst;
      // Only expand finished transactions (§3.2.3): unfinished members
      // will trigger their own detection when they end.
      if (!Next->Finished.load(std::memory_order_acquire))
        continue;
      if (Next->SccEpoch != Epoch) {
        Visit(Next);
      } else if (Next->OnStack) {
        F.Tx->SccLow = std::min(F.Tx->SccLow, Next->SccIndex);
      }
      continue;
    }
    // Post-order: pop the frame; maybe pop a component.
    Transaction *Tx = F.Tx;
    CallStack.pop_back();
    if (!CallStack.empty())
      CallStack.back().Tx->SccLow =
          std::min(CallStack.back().Tx->SccLow, Tx->SccLow);
    if (Tx->SccLow != Tx->SccIndex)
      continue;
    // Tx is the root of a component; pop its members.
    std::vector<Transaction *> Members;
    for (;;) {
      Transaction *M = TarjanStack.back();
      TarjanStack.pop_back();
      M->OnStack = false;
      Members.push_back(M);
      if (M == Tx)
        break;
    }
    // Only the component containing V is new; components among descendants
    // were detected when their own last member finished.
    if (Tx != V || Members.size() < 2)
      continue;
    ++SccCount;
    for (Transaction *M : Members) {
      if (M->Regular)
        SccSites.insert(M->Site);
      else
        SccAnyUnary = true;
    }
    if (AsyncPcd)
      AsyncPcd->enqueue(std::move(Members));
    else if (Pcd)
      Pcd->processScc(Members);
  }
}

//===----------------------------------------------------------------------===//
// Transaction collection (stands in for the JVM's GC)
//===----------------------------------------------------------------------===//

void DoubleCheckerRuntime::collectLocked() {
  auto Start = std::chrono::steady_clock::now();
  const uint64_t Epoch = ++MarkEpochCounter;
  std::vector<Transaction *> Work;
  auto AddRoot = [&](Transaction *Tx) {
    if (Tx != nullptr && Tx->MarkEpoch != Epoch) {
      Tx->MarkEpoch = Epoch;
      Work.push_back(Tx);
    }
  };
  for (uint32_t T = 0; T < NumThreads; ++T) {
    AddRoot(Threads[T].CurrTx.load(std::memory_order_relaxed));
    AddRoot(Threads[T].LastRdEx);
  }
  AddRoot(GLastRdSh);
  while (!Work.empty()) {
    Transaction *Tx = Work.back();
    Work.pop_back();
    for (const OutEdge &E : Tx->Out)
      AddRoot(E.Dst);
  }
  // Sweep: a finished transaction not forward-reachable from any root can
  // never gain another edge (edge sinks are current transactions; edge
  // sources are roots), so it cannot join a future cycle.
  for (uint32_t T = 0; T < NumThreads; ++T) {
    PerThread &PT = Threads[T];
    SpinLockGuard Guard(PT.OwnedLock);
    size_t Kept = 0;
    for (size_t I = 0; I < PT.Owned.size(); ++I) {
      Transaction *Tx = PT.Owned[I];
      if (Tx->MarkEpoch == Epoch ||
          Tx->Pins.load(std::memory_order_acquire) != 0) {
        PT.Owned[Kept++] = Tx;
      } else {
        assert(Tx->Finished.load(std::memory_order_relaxed) &&
               "sweeping a live transaction");
        delete Tx;
        ++TxsSwept;
      }
    }
    PT.Owned.resize(Kept);
  }
  ++CollectorRuns;
  CollectorNs += static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - Start)
          .count());
}

StaticTransactionInfo DoubleCheckerRuntime::staticInfo() const {
  SpinLockGuard Guard(IdgLock);
  StaticTransactionInfo Info;
  Info.AnyUnary = SccAnyUnary;
  for (ir::MethodId Site : SccSites)
    if (Site != ir::InvalidMethodId)
      Info.MethodNames.insert(P.Methods[Site].Name);
  return Info;
}
