//===- analysis/LogArena.h - Allocation-free access-log storage -*- C++ -*-===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Storage and elision machinery for the per-access logging hot path
/// (DESIGN.md §8). Three pieces, designed so that a logged access performs
/// zero shared-memory writes and zero heap allocations in the common case:
///
///  * ElisionFilter — a per-thread open-addressing duplicate-access filter
///    keyed by (object, field address) and stamped with the thread's
///    log-elision epoch (PerThread::CurTs). A transaction boundary or an
///    incoming/outgoing cross-thread edge bumps the epoch, which implicitly
///    invalidates every slot — nothing is ever cleared. The filter replaces
///    the seed's globally shared ElisionCells array, whose cache lines
///    ping-ponged between threads on read-shared fields (the very effect
///    LogRemoteMissPenalty simulates for the legacy path).
///
///  * LogSlot / LogChunk / ChunkedLog — packed log storage. An access
///    record is one 16-byte slot (half the seed's 32-byte LogEntry); the
///    rare EdgeIn marker is a full-width record spanning two consecutive
///    slots (records may straddle a chunk boundary; readers only ever scan
///    from position 0). Chunks are fixed-size blocks chained per
///    transaction, so an append never reallocates or copies — the log
///    positions published in Transaction::LogLen count slots and are stable
///    the moment they are published.
///
///  * LogChunkPool / LogChunkCache — chunk recycling. The mutator draws
///    chunks from its per-thread cache (no synchronization); the cache
///    refills in batches from the global pool (one lock per batch); the
///    mark-sweep collector returns every swept transaction's chunks to the
///    pool in one splice. Steady state allocates nothing.
///
///  * RingLog — the default publication transport (DESIGN.md §13): a
///    PerCpuRings array sized O(cores) that mutators commit records into
///    wait-free, with a single drain side (background drainer, mutator
///    self-drain on a full ring, collector peek — all serialized by one
///    internal lock) materializing records into per-transaction
///    ChunkedLogs at their mutator-assigned positions. Per-thread chunk
///    caches disappear in this mode; only the drain side holds one.
///
//===----------------------------------------------------------------------===//

#ifndef DC_ANALYSIS_LOGARENA_H
#define DC_ANALYSIS_LOGARENA_H

#include <atomic>
#include <cassert>
#include <cstdint>
#include <functional>

#include "support/PerCpuRings.h"
#include "support/ResourceGovernor.h"
#include "support/SpinLock.h"

namespace dc {
namespace analysis {

class Transaction;

//===----------------------------------------------------------------------===//
// ElisionFilter
//===----------------------------------------------------------------------===//

/// Per-thread duplicate-access filter (paper §4's log elision, thread-local
/// form). Only the owning thread ever touches it, so a hit or an insert
/// costs a few private-cache accesses and no coherence traffic.
///
/// Soundness: an access is elided only when the *same* (object, field) was
/// accessed earlier in the same elision epoch and the earlier access
/// subsumes this one (read after anything; write only after write). Epochs
/// advance at transaction boundaries and whenever a cross-thread edge
/// touches the thread's current transaction, so an elided entry is always
/// a true duplicate with no intervening edge. Collisions and evictions only
/// ever *lose* elision opportunities (the access gets logged), never
/// fabricate one.
class ElisionFilter {
public:
  /// 8 KiB; power of two. Sized small on purpose: a filter entry only
  /// lives until the next epoch bump (a transaction boundary or a
  /// cross-thread edge), so it needs to hold one transaction's working set
  /// of distinct fields, not the heap's. 8 KiB leaves the rest of L1d to
  /// the log chunk being filled; evicting a live slot is always sound.
  static constexpr uint32_t NumSlots = 512;
  static constexpr uint32_t ProbeLen = 4;

  static uint64_t key(uint32_t Obj, uint32_t Addr) {
    return (static_cast<uint64_t>(Obj) << 32) | Addr;
  }

  /// Returns true iff the access may be elided. Otherwise records it so
  /// later duplicates in the same epoch can be elided. \p Epoch must be
  /// strictly positive (slot stamps of 0 mean "never used").
  ///
  /// The probe stops at the first slot whose stamp is not the current
  /// epoch. That is sound because inserts always claim the first stale
  /// slot in probe order and, within one epoch, a slot never transitions
  /// live -> stale (stamps are only ever written with the current epoch):
  /// if the key lived beyond a stale slot, it would have been inserted at
  /// or before that slot instead. So the common fresh-epoch miss — the
  /// append-heavy case — costs a single slot probe.
  bool testAndSet(uint64_t Key, uint64_t Epoch, bool IsWrite) {
    assert(Epoch > 0 && "epoch 0 is the empty-slot sentinel");
    const uint32_t Base = static_cast<uint32_t>(
        (Key * 0x9E3779B97F4A7C15ULL) >> 32);
    for (uint32_t I = 0; I < ProbeLen; ++I) {
      Slot &S = Slots[(Base + I) & (NumSlots - 1)];
      if ((S.Stamp >> 1) != Epoch) { // Stale: the key cannot be further on.
        S.Key = Key;
        S.Stamp = (Epoch << 1) | static_cast<uint64_t>(IsWrite);
        return false;
      }
      if (S.Key == Key) {
        if ((S.Stamp & 1) != 0 || !IsWrite)
          return true; // Read after anything / write after write: elide.
        S.Stamp |= 1;  // Read then write: log it, remember the write.
        return false;
      }
    }
    // Whole window live with other keys: evict the window base. Evicting a
    // live slot is sound (the victim's next duplicate just gets logged).
    Slot &Victim = Slots[Base & (NumSlots - 1)];
    Victim.Key = Key;
    Victim.Stamp = (Epoch << 1) | static_cast<uint64_t>(IsWrite);
    return false;
  }

private:
  struct Slot {
    uint64_t Key = 0;
    /// epoch << 1 | wasWrite. Epoch 0 never matches (CurTs starts at 1).
    uint64_t Stamp = 0;
  };
  Slot Slots[NumSlots];
};

//===----------------------------------------------------------------------===//
// Packed log slots and chunks
//===----------------------------------------------------------------------===//

/// One 16-byte log slot. Record encodings (tag = Meta & 3):
///   Read (0) / Write (1): A = object id, B = field address.
///   EdgeIn (2):           A = source thread id, B = sampled source log
///                         position, Meta >> 2 = source SeqInThread; the
///                         *next* slot's Meta holds the edge's OrderClock
///                         stamp (a continuation slot with no tag — cursors
///                         always consume both slots together).
struct LogSlot {
  uint32_t A = 0;
  uint32_t B = 0;
  uint64_t Meta = 0;
};
static_assert(sizeof(LogSlot) == 16, "access records must stay 16 bytes");

enum : uint64_t {
  SlotTagRead = 0,
  SlotTagWrite = 1,
  SlotTagEdgeIn = 2,
  SlotTagMask = 3,
};

/// A fixed-size block of log slots. 32 slots = 512 B of payload — sized
/// so the typical small transaction fills most of its single chunk
/// (internal fragmentation, not chunk-chain overhead, is what bloats the
/// live log footprint under the deferred collector). The chunk never
/// moves once linked, which is what lets LogLen be published per-append
/// while another thread samples it lock-free.
struct LogChunk {
  static constexpr uint32_t SlotsPerChunk = 32;
  LogChunk *Next = nullptr;
  LogSlot Slots[SlotsPerChunk];
};

//===----------------------------------------------------------------------===//
// Chunk recycling
//===----------------------------------------------------------------------===//

/// Global free list of chunks, shared by all threads of one runtime.
/// Touched only in batches: cache refills pop several chunks per lock
/// acquisition, and the collector splices a swept transaction's whole chain
/// back in one call.
class LogChunkPool {
public:
  LogChunkPool() = default;
  LogChunkPool(const LogChunkPool &) = delete;
  LogChunkPool &operator=(const LogChunkPool &) = delete;
  ~LogChunkPool();

  /// Pops up to \p Max chunks into a null-terminated chain; allocates
  /// fresh chunks for any shortfall so the result always holds \p Max.
  LogChunk *popBatch(uint32_t Max);

  /// Returns the chain [Head .. Tail] (Tail->Next ignored) of \p N chunks
  /// to the free list.
  void recycle(LogChunk *Head, LogChunk *Tail, uint64_t N);

  /// Deterministic fault injection: the Nth admitRefill() call (1-based)
  /// against this pool is refused as if allocation returned null. 0 = off.
  void failRefillAt(uint64_t N) { FailAt = N; }

  /// Charges chunk bytes leaving/re-entering the pool to \p G (may be
  /// null). Refills are refused while G's log-byte budget is breached.
  void setGovernor(ResourceGovernor *G) { Gov = G; }

  /// Counts a cache refill request and decides it. False — injected
  /// allocation failure or log-byte budget breach — means the caller must
  /// shed instead of calling popBatch. The request count is deterministic
  /// for a fixed schedule: caches refill every RefillBatch chunks consumed,
  /// and appends are schedule-determined.
  bool admitRefill();

  /// Chunks created with operator new (pool misses).
  uint64_t chunkAllocs() const {
    return Allocs.load(std::memory_order_relaxed);
  }
  /// Chunks served again from the free list after being recycled.
  uint64_t chunkRecycles() const {
    return Reuses.load(std::memory_order_relaxed);
  }
  /// Cache refill requests (admitted or refused).
  uint64_t refillRequests() const {
    return RefillCalls.load(std::memory_order_relaxed);
  }
  /// Refill requests refused (injected fault or budget breach).
  uint64_t refillsRefused() const {
    return Refusals.load(std::memory_order_relaxed);
  }

private:
  SpinLock Lock;
  LogChunk *Free = nullptr;
  std::atomic<uint64_t> Allocs{0};
  std::atomic<uint64_t> Reuses{0};
  std::atomic<uint64_t> RefillCalls{0};
  std::atomic<uint64_t> Refusals{0};
  uint64_t FailAt = 0;
  ResourceGovernor *Gov = nullptr;
};

/// Per-thread chunk cache: the mutator-facing face of LogChunkPool. Not
/// thread-safe; each program thread owns exactly one. With no pool
/// attached (hand-built transactions in tests/benches) it falls back to
/// plain allocation.
class LogChunkCache {
public:
  static constexpr uint32_t RefillBatch = 8;

  LogChunkCache() = default;
  LogChunkCache(const LogChunkCache &) = delete;
  LogChunkCache &operator=(const LogChunkCache &) = delete;
  ~LogChunkCache();

  void attach(LogChunkPool *P) { Pool = P; }

  /// Returns a chunk ready for use (Next == nullptr). Allocation-free
  /// whenever the cache or the pool's free list can serve it.
  LogChunk *get();

  /// Like get(), but returns null when the pool refuses the refill
  /// (injected allocation failure or log-byte budget breach) — the
  /// degradation ladder's shed trigger. get() keeps the never-fail
  /// contract for callers that cannot shed (EdgeIn markers).
  LogChunk *tryGet();

private:
  LogChunkPool *Pool = nullptr;
  LogChunk *Free = nullptr;
  uint32_t Count = 0;
};

//===----------------------------------------------------------------------===//
// ChunkedLog
//===----------------------------------------------------------------------===//

/// A transaction's packed access log: a chain of chunks appended by the
/// owning thread (or, for EdgeIn markers, by a thread holding the owner
/// quiescent — the same single-writer discipline the seed's vector had).
/// Appends never move existing slots; readers (PCD replay) start only
/// after the transaction is Finished and always scan from the front.
class ChunkedLog {
public:
  ChunkedLog() = default;
  ChunkedLog(const ChunkedLog &) = delete;
  ChunkedLog &operator=(const ChunkedLog &) = delete;
  ~ChunkedLog() { freeChunks(); }

  /// Total slots appended (EdgeIn records count 2). This is the unit
  /// LogLen publishes and SrcPos samples.
  uint32_t size() const { return NumSlots; }
  bool empty() const { return NumSlots == 0; }
  const LogChunk *head() const { return Head; }

  /// Appends one access record (one slot). \p Cache may be null. Returns
  /// the new size so the caller can publish LogLen without re-reading it.
  uint32_t appendAccess(uint32_t Obj, uint32_t Addr, bool IsWrite,
                        LogChunkCache *Cache) {
    LogSlot &S = *grabSlot(Cache);
    S.A = Obj;
    S.B = Addr;
    S.Meta = IsWrite ? SlotTagWrite : SlotTagRead;
    return ++NumSlots;
  }

  /// Appends one EdgeIn marker (two slots; may straddle a chunk boundary).
  void appendEdgeIn(uint32_t SrcTid, uint32_t SrcPos, uint64_t SrcSeq,
                    uint64_t Time, LogChunkCache *Cache) {
    LogSlot &S = *grabSlot(Cache);
    S.A = SrcTid;
    S.B = SrcPos;
    S.Meta = SlotTagEdgeIn | (SrcSeq << 2);
    LogSlot &Cont = *grabSlot(Cache);
    Cont.A = 0;
    Cont.B = 0;
    Cont.Meta = Time;
    NumSlots += 2;
  }

  /// Drain-side positional write (ring transport): extends the chain to
  /// cover slot positions [0, Pos + N) and copies \p N slots at \p Pos,
  /// growing size() to at least Pos + N. Positions are assigned by the
  /// logging mutator; records drain out of ring order (a migrated thread's
  /// records split across rings), so writes land anywhere. Single-writer:
  /// only the ring drain side (under its lock) calls this, and a log
  /// written this way is never also appended to.
  ///
  /// Returns false when \p Cache refused a needed chunk (budget breach or
  /// injected allocation failure) — the caller must shed the transaction;
  /// whatever was already materialized stays linked for reclamation.
  bool writeAt(uint32_t Pos, const LogSlot *Src, uint32_t N,
               LogChunkCache *Cache) {
    const uint32_t End = Pos + N;
    while (NumChunks * LogChunk::SlotsPerChunk < End) {
      LogChunk *C = Cache != nullptr ? Cache->tryGet() : new LogChunk();
      if (C == nullptr)
        return false;
      adoptChunk(C);
    }
    const uint32_t ChunkIdx = Pos / LogChunk::SlotsPerChunk;
    if (DrainChunk == nullptr || ChunkIdx < DrainChunkIdx) {
      DrainChunk = Head;
      DrainChunkIdx = 0;
    }
    while (DrainChunkIdx < ChunkIdx) {
      DrainChunk = DrainChunk->Next;
      ++DrainChunkIdx;
    }
    LogChunk *C = DrainChunk;
    uint32_t CI = DrainChunkIdx;
    for (uint32_t I = 0; I < N; ++I) {
      const uint32_t P = Pos + I;
      if (P / LogChunk::SlotsPerChunk != CI) {
        C = C->Next;
        ++CI;
      }
      C->Slots[P % LogChunk::SlotsPerChunk] = Src[I];
    }
    if (End > NumSlots)
      NumSlots = End;
    return true;
  }

  /// Moves every chunk to \p Pool (collector reclamation); the log becomes
  /// empty storage-wise but keeps its size (the transaction is dead).
  void releaseTo(LogChunkPool &Pool) {
    if (Head == nullptr)
      return;
    Pool.recycle(Head, Tail, NumChunks);
    Head = Tail = nullptr;
    TailUsed = LogChunk::SlotsPerChunk;
    NumChunks = 0;
    DrainChunk = nullptr;
    DrainChunkIdx = 0;
  }

  /// True when the next append needs a fresh chunk — the only point where
  /// allocation (and thus shedding, via LogChunkCache::tryGet) can happen.
  bool tailFull() const { return TailUsed == LogChunk::SlotsPerChunk; }

  /// Links \p C (Next == nullptr, e.g. from tryGet) as the new tail.
  void adoptChunk(LogChunk *C) {
    if (Tail == nullptr)
      Head = C;
    else
      Tail->Next = C;
    Tail = C;
    TailUsed = 0;
    ++NumChunks;
  }

private:
  /// One compare on the fast path: TailUsed doubles as the "no chunk yet"
  /// sentinel (it starts at SlotsPerChunk, and releaseTo restores that),
  /// so a full tail and an empty log take the same refill branch.
  LogSlot *grabSlot(LogChunkCache *Cache) {
    if (TailUsed == LogChunk::SlotsPerChunk)
      refillTail(Cache);
    return &Tail->Slots[TailUsed++];
  }

  void refillTail(LogChunkCache *Cache) {
    adoptChunk(Cache != nullptr ? Cache->get() : new LogChunk());
  }

  void freeChunks() {
    for (LogChunk *C = Head; C != nullptr;) {
      LogChunk *Next = C->Next;
      delete C;
      C = Next;
    }
    Head = Tail = nullptr;
    DrainChunk = nullptr;
    DrainChunkIdx = 0;
  }

  LogChunk *Head = nullptr;
  LogChunk *Tail = nullptr;
  uint32_t NumSlots = 0;
  /// Starts "full" so grabSlot's single compare also covers Tail == null.
  uint32_t TailUsed = LogChunk::SlotsPerChunk;
  uint32_t NumChunks = 0;
  /// writeAt's resume cursor: drains are near-sequential per transaction,
  /// so remembering the last chunk visited makes the common case O(1).
  LogChunk *DrainChunk = nullptr;
  uint32_t DrainChunkIdx = 0;
};

//===----------------------------------------------------------------------===//
// RingLog
//===----------------------------------------------------------------------===//

/// One published log record in flight between a mutator and the drain
/// side. Carries the record whole — an EdgeIn marker's two slots travel in
/// one cell — plus the slot position the mutator assigned from its
/// transaction's LogLen, so materialization is position-exact and
/// independent of drain timing (what keeps ring-mode results bit-equal
/// with arena mode on identical schedules).
struct RingRecord {
  Transaction *Tx = nullptr;
  uint32_t Pos = 0;
  uint32_t NumSlots = 0;
  LogSlot Slots[2];
};

/// The default log transport (DESIGN.md §13): bounded per-CPU rings that
/// mutators commit into wait-free-bounded, drained into per-transaction
/// ChunkedLogs off the hot path. All consumption — the background drainer,
/// a mutator self-draining a full ring, the collector's liveness peek — is
/// serialized by the internal drain lock, which also guards the single
/// drain-side chunk cache (the O(cores) footprint story: per-thread caches
/// do not exist in this mode).
class RingLog {
public:
  /// Defaults: rings track the hardware, 64 KiB of cells per ring (1024
  /// records at one cache line per cell).
  static constexpr uint32_t DefaultRingBytes = 64 * 1024;

  RingLog(uint32_t NumRings, uint32_t BytesPerRing)
      : Rings(NumRings, (BytesPerRing ? BytesPerRing : DefaultRingBytes) /
                            CellBytes) {}

  void attachPool(LogChunkPool *P) { DrainCache.attach(P); }

  /// Invoked (under the drain lock) for each transaction the drain side
  /// sheds because chunk refill was refused. The checker hooks this to
  /// record the structured ShedLogging degradation event that arena mode
  /// records at the mutator — same ladder, different side of the ring.
  void setShedHook(std::function<void(Transaction *)> H) {
    ShedHook = std::move(H);
  }

  uint32_t numRings() const { return Rings.numRings(); }
  uint32_t capacity() const { return Rings.capacity(); }
  uint64_t footprintBytes() const { return Rings.footprintBytes(); }
  uint32_t ringFor(uint32_t CpuHint) const { return Rings.ringFor(CpuHint); }
  static uint32_t currentCpu() { return PerCpuRings<RingRecord>::currentCpu(); }

  /// Wait-free-bounded publish of one whole record at position \p Pos of
  /// \p Tx's log. The caller publishes Tx->LogLen only after Ok, so every
  /// sampled SrcPos refers to published cells.
  RingCommit commit(uint32_t RingIdx, Transaction *Tx, uint32_t Pos,
                    const LogSlot *S, uint32_t N) {
    return Rings.tryCommit(RingIdx, [&](RingRecord &R) {
      R.Tx = Tx;
      R.Pos = Pos;
      R.NumSlots = N;
      R.Slots[0] = S[0];
      if (N > 1)
        R.Slots[1] = S[1];
    });
  }

  /// Blocking drain of every ring (drainer thread, completeness waits).
  /// Returns records materialized.
  uint32_t drainAll();

  /// Opportunistic drain (mutator self-drain on a full ring): returns
  /// false without draining when the drain lock is busy — someone else is
  /// already making space.
  bool tryDrainAll(uint32_t &Drained);

  /// Visits the Transaction* of every published, unconsumed record across
  /// all rings (including records stuck behind a gap), under the drain
  /// lock. The collector uses this to keep transactions with in-flight
  /// records alive.
  template <typename VisitFn> void peekPublished(VisitFn &&Visit) {
    SpinLockGuard Guard(DrainMu);
    for (uint32_t R = 0; R < Rings.numRings(); ++R)
      Rings.peek(R, [&](RingRecord &Rec) { Visit(Rec.Tx); });
  }

  uint64_t drainPasses() const {
    return DrainPasses.load(std::memory_order_relaxed);
  }
  uint64_t recordsDrained() const {
    return RecordsDrained.load(std::memory_order_relaxed);
  }
  /// Records whose materialization was refused a chunk (the transaction
  /// was shed instead — never lost silently).
  uint64_t shedRefusals() const {
    return ShedRefusals.load(std::memory_order_relaxed);
  }

private:
  /// PerCpuRings pads each cell to a cache line.
  static constexpr uint32_t CellBytes = 64;

  uint32_t drainAllLocked();

  PerCpuRings<RingRecord> Rings;
  std::function<void(Transaction *)> ShedHook;
  SpinLock DrainMu;
  /// Guarded by DrainMu, like everything on the consume side.
  LogChunkCache DrainCache;
  std::atomic<uint64_t> DrainPasses{0};
  std::atomic<uint64_t> RecordsDrained{0};
  std::atomic<uint64_t> ShedRefusals{0};
};

} // namespace analysis
} // namespace dc

#endif // DC_ANALYSIS_LOGARENA_H
