//===- analysis/StaticInfo.cpp --------------------------------------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/StaticInfo.h"

#include <sstream>

using namespace dc;
using namespace dc::analysis;

std::string StaticTransactionInfo::serialize() const {
  std::ostringstream OS;
  if (AnyUnary)
    OS << "unary\n";
  for (const std::string &Name : MethodNames)
    OS << "method " << Name << "\n";
  return OS.str();
}

StaticTransactionInfo StaticTransactionInfo::parse(const std::string &Text) {
  StaticTransactionInfo Info;
  std::istringstream IS(Text);
  std::string Line;
  while (std::getline(IS, Line)) {
    if (Line == "unary") {
      Info.AnyUnary = true;
      continue;
    }
    constexpr const char *Prefix = "method ";
    if (Line.rfind(Prefix, 0) == 0)
      Info.MethodNames.insert(Line.substr(7));
  }
  return Info;
}
