//===- analysis/DoubleChecker.h - ICD(+PCD) checker runtime -----*- C++ -*-===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// DoubleCheckerRuntime is the paper's analysis attached to one execution:
///
///  * It owns an OctetManager and implements OctetListener: every Octet
///    transition becomes an imprecise-dependence-graph edge per Figure 4
///    (conflicting -> edge from the responder's current transaction;
///    upgrading to RdSh -> edges from the old owner's lastRdEx and from
///    gLastRdSh; fence -> edge from gLastRdSh).
///  * It demarcates regular transactions at txBegin/txEnd and merges
///    non-transactional accesses into unary transactions until a
///    cross-thread edge interrupts them.
///  * When a transaction with cross-thread edges ends, it computes the
///    maximal SCC containing it over *finished* transactions (§3.2.3);
///    members' static sites feed multi-run mode's StaticTransactionInfo,
///    and — when logging is on — the SCC goes to PCD for precise checking.
///  * A mark-sweep collector reclaims transactions unreachable from the
///    roots {per-thread current transaction, per-thread lastRdEx,
///    gLastRdSh}, standing in for the JVM garbage collector the paper
///    relies on (see DESIGN.md §2 for the liveness argument).
///
/// Concurrency (see DESIGN.md §7 for the full argument): the IDG is
/// sharded — one lock stripe per thread plus one global stripe — so the
/// per-thread transaction lifecycle only touches its own stripe, cross
/// edges take the two involved threads' stripes, and only SCC detection
/// and collection quiesce the whole graph. Collection runs on a background
/// thread; PCD SCCs go to a bounded multi-worker pool. The pre-sharding
/// behaviour (one global lock, inline collection) is kept behind
/// DoubleCheckerOptions::SerializedIdg as a one-PR escape hatch.
///
/// Configure with LogAccesses=false, RunPcd=false for the first run of
/// multi-run mode ("ICD w/o logging"); defaults give single-run mode.
///
//===----------------------------------------------------------------------===//

#ifndef DC_ANALYSIS_DOUBLECHECKER_H
#define DC_ANALYSIS_DOUBLECHECKER_H

#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <thread>

#include "analysis/IncrementalCycles.h"
#include "analysis/OnlinePcd.h"
#include "analysis/Pcd.h"
#include "analysis/StaticInfo.h"
#include "analysis/Transaction.h"
#include "analysis/Violation.h"
#include "octet/OctetManager.h"
#include "rt/CheckerRuntime.h"
#include "rt/Runtime.h"
#include "rt/Watchdog.h"
#include "support/FaultPlan.h"
#include "support/ResourceGovernor.h"
#include "support/SpinLock.h"
#include "support/Statistic.h"
#include "support/StripedLock.h"

namespace dc {

class TraceRecorder;

namespace analysis {

/// Knobs selecting between single-run mode and the runs of multi-run mode.
struct DoubleCheckerOptions {
  /// Record read/write logs (required for PCD). Single-run and the second
  /// run of multi-run mode: true. First run: false.
  bool LogAccesses = true;
  /// Run PCD on each ICD SCC. First run: false.
  bool RunPcd = true;
  /// Future-work extension the paper suggests for the xalan6 bottleneck
  /// ("ICD detects SCCs serially, and PCD detects cycles serially; making
  /// them parallel could alleviate this bottleneck", §5.3): offload PCD to
  /// a pool of background worker threads. SCC members are finished
  /// (immutable logs) and pinned against collection while queued, so the
  /// replay needs no locks. Violations may be reported slightly later but
  /// identically.
  bool ParallelPcd = false;
  /// Worker threads in the parallel-PCD pool (ParallelPcd only; min 1).
  /// SCCs are independent after enqueue, so workers replay them
  /// concurrently; processScc is stateless per call.
  uint32_t PcdWorkers = 2;
  /// Bound on the parallel-PCD queue. Enqueueing past the bound blocks the
  /// detecting thread (backpressure; visible in pcd.max_queue_depth).
  uint32_t PcdQueueDepth = 1024;
  /// Disable ICD SCC detection entirely (§5.4 array-instrumentation
  /// ablation, where conflated metadata makes cycles meaningless).
  bool DetectIcdCycles = true;
  /// Escape hatch: answer "did this edge close a cycle?" with the batched
  /// stop-the-world Tarjan passes instead of the default incremental
  /// order-maintenance detector (IncrementalCycles.h, DESIGN.md §12). Both
  /// modes claim a component at the same instant — when its last member
  /// finishes — and hand identical member sets to PCD, so they blame
  /// identical methods on identical schedules; dcfuzz replays every pair
  /// through both to keep that differential honest. The batched pass
  /// freezes every IDG stripe per flush; the incremental detector never
  /// takes more stripes than the edge writer already holds.
  bool BatchedScc = false;
  /// Incremental detector's affected-region cap: an inconsistent edge
  /// whose two-way search would visit more vertices than this stops
  /// reordering and degrades the region soundly — it collapses into one
  /// poisoned group whose members are reported as Potential violations
  /// (Pcd::reportPotential) instead of being replayed. The default is
  /// unreachable for any governed live graph; tests shrink it.
  uint32_t IcdMaxRegion = 1u << 20;
  /// Escape hatch: force every ICD cross edge through the detector's Mu
  /// slow path instead of the default lock-free seqlock-validated fast
  /// path for order-consistent edges (DESIGN.md §12). For
  /// lockfree-vs-locked comparisons; violations must be identical.
  bool IcdLockedFastPath = false;
  /// Test/fault knob: force each ICD fast-path attempt to fail seqlock
  /// validation this many times (0 = off), deterministically exercising
  /// the retry counter and the retry-cap fallback.
  uint32_t IcdSeqRetryStorm = 0;
  /// Cross-edged transactions that must finish before one batched Tarjan
  /// pass walks from all of them at once (BatchedScc mode only). Every
  /// pass takes all IDG stripes (a full-graph freeze), so batching divides
  /// both the freeze frequency and the per-thread stripe handoffs a freeze
  /// inflicts on uninvolved threads by this factor. Detection totals are
  /// unchanged — a cycle is complete by the time its last member finishes,
  /// pending roots are collector-strong until their pass runs, and endRun
  /// flushes the tail — only the report is deferred by at most this many
  /// transactions. 1 restores per-transaction-end detection.
  uint32_t SccBatch = 8;
  /// §5.4 straw man: feed *every* transaction to a persistent precise
  /// analysis instead of filtering through ICD SCCs. Implies LogAccesses;
  /// the transaction collector is disabled (the persistent maps pin
  /// transactions), reproducing the variant's memory blow-up.
  bool PcdOnly = false;
  /// Escape hatch: collapse all IDG stripes into one global lock and run
  /// the collector inline under it — the pre-sharding behaviour. Kept for
  /// one PR so bench/scaling_threads.cpp can compare the two paths; the
  /// default (sharded) path must produce identical violations.
  bool SerializedIdg = false;
  /// Escape hatch mirroring SerializedIdg, one layer down: run Octet
  /// coordination with the seed's serial spin-only protocol (one roundtrip
  /// completed before the next is posted) instead of the pipelined fan-out
  /// with spin-then-park waiting (DESIGN.md §11). Kept so dcfuzz can
  /// differentially test serial vs. pipelined on one schedule; both must
  /// produce identical violations.
  bool SerialRoundtrips = false;
  /// Escape hatch for the SCC root filter (BatchedScc mode only): pend
  /// every cross-touched transaction as a Tarjan root, not just those with an outgoing cross
  /// edge (which are the only possible claiming members — see
  /// Transaction.h). Same detected components either way — kept so dcfuzz
  /// can replay one schedule through both and assert identical violations.
  bool EagerSccRoots = false;
  /// Trigger the transaction collector every this many finished
  /// transactions.
  uint32_t CollectEveryTx = 8192;
  /// Passed through to PCD.
  uint32_t MaxSccTxsForPcd = 1u << 20;
  /// Escape hatch mirroring SerializedIdg: use the seed's logging path —
  /// globally shared elision cells and a reallocating std::vector log with
  /// 32-byte entries — instead of the per-thread filter + chunked arena
  /// (DESIGN.md §8). Kept for one PR so the differential tests and
  /// bench/logging_throughput can compare the two paths; both must produce
  /// identical violations.
  bool LegacyLog = false;
  /// Escape hatch mirroring LegacyLog, one generation up: keep the PR-2
  /// per-thread arena as the log *publication* path instead of the default
  /// per-CPU ring transport (DESIGN.md §13). In arena mode every thread
  /// appends directly into its transaction's chunk chain from a private
  /// chunk cache (footprint O(threads)); in ring mode mutators publish
  /// records into O(cores) bounded rings and a drain side materializes the
  /// chains off the hot path. Kept as the differential partner — both must
  /// produce identical violations on identical schedules. PcdOnly forces
  /// arena (its online analysis consumes each log synchronously at
  /// transaction end, before any drain could run).
  bool ThreadArenaLog = false;
  /// Ring transport geometry. RingCount 0 sizes the array to the host's
  /// hardware concurrency; RingBytes 0 selects RingLog::DefaultRingBytes.
  /// Both round up to powers of two. Tests shrink RingBytes to force the
  /// full-ring ladder.
  uint32_t RingCount = 0;
  uint32_t RingBytes = 0;
  /// Log duplicate elision (paper §4). On by default; off is a
  /// differential-testing mode that logs every access.
  bool ElideDuplicates = true;
  /// Test-only fault injection (never set by real configurations):
  /// deliberately break the ICD filter's soundness by dropping two-member
  /// SCCs before they reach PCD or the multi-run static info. The schedule
  /// fuzzer (tools/dcfuzz.cpp) must catch the resulting missed violations
  /// as divergences from Velodrome and the trace oracle, and minimize them
  /// to a small replayable witness — the standing proof that the harness
  /// would notice a real unsound filter.
  bool TestOnlyUnsoundFilter = false;
  /// Remote-cache-miss simulation for the *legacy* log-elision metadata
  /// (LegacyLog only), mirroring VelodromeOptions::RemoteMissPenalty (see
  /// DESIGN.md §2): appending a log entry rewrites the field's globally
  /// shared timestamp cell, which on a real multicore ping-pongs for
  /// fields logged by several threads. Calibrated at the methodology's
  /// per-line figure — one ping-ponged cache line costs 300, exactly
  /// Velodrome's per-line RemoteMissPenalty and half the IDG stripes' two-
  /// line 600 (an earlier default of 15 under-modelled the miss by an
  /// order of magnitude relative to those two). The default logging path's
  /// filter is thread-local and has no remote misses to simulate, so this
  /// knob is ignored there. 0 disables.
  uint32_t LogRemoteMissPenalty = 300;
  /// Remote-cache-miss simulation for IDG lock stripes (same methodology):
  /// when a stripe is acquired by a different thread than its last holder,
  /// two lines miss in the acquirer's cache — the stripe's lock word and
  /// the hot transaction state it guards (the previous holder dirtied both
  /// in its critical section). Calibrated at twice Velodrome's
  /// RemoteMissPenalty (300 per ping-ponged line for its two-word locked
  /// metadata update). With one global stripe nearly every acquisition is
  /// a handoff; with per-thread stripes only genuine cross-thread events
  /// are. 0 disables.
  uint32_t IdgRemoteMissPenalty = 600;

  // --- Overload / fault tolerance (DESIGN.md §10) -------------------------

  /// Deterministic counter-keyed fault injection (tests / fuzzing only).
  FaultPlan Faults;
  /// ResourceGovernor budget: live (uncollected) transactions. 0 = off.
  /// A breach triggers extra collections and sheds logging at the next
  /// chunk refill (sound: shed threads degrade to ICD-only).
  uint64_t MaxLiveTxs = 0;
  /// ResourceGovernor budget: bytes of log chunks out of the pool. 0 = off.
  uint64_t MaxLogBytes = 0;
  /// Watchdog/stall timeout: a busy component (PCD worker, collector,
  /// scheduler gate) silent for longer trips a CheckerFault; a PCD enqueue
  /// or drain blocked for longer degrades its SCCs to potential violations
  /// instead of waiting forever.
  uint32_t PcdStallTimeoutMs = 10000;
  /// Watchdog poll interval.
  uint32_t WatchdogPollMs = 10;
  /// After shedding, a thread attempts to re-arm full logging once this
  /// many of its transactions have started and the governor reports
  /// pressure subsided (hysteresis at half-budget).
  uint32_t RearmAfterTxs = 64;

  // --- Streaming service mode (DESIGN.md §15) -----------------------------

  /// Retirement-window size: every this many finished transactions, the
  /// thread that crossed the boundary runs one window flush — pending
  /// batched detection, a full ring drain, a PCD-pool drain, then a
  /// synchronous collection — so everything decidable as of the boundary is
  /// decided and swept. Transactions the flush cannot retire (still
  /// running, strongly reachable, or pinned by an in-flight replay) are
  /// carried — "pinned" — into the next window; nothing is dropped. 0
  /// disables windowing (plain batch mode).
  uint32_t WindowTxs = 0;
  /// Chrome-trace timeline recorder (tools/dcheck --trace-out). Null
  /// disables all trace hooks. Must outlive the runtime.
  TraceRecorder *Trace = nullptr;
  /// Streaming observer called after each window flush with the
  /// post-flush health snapshot (no checker locks held).
  std::function<void(const rt::HealthSnapshot &)> WindowHook;
  /// Streaming observer for the first structured checker fault.
  std::function<void(rt::CheckerFault, const std::string &)> FaultHook;
};

/// The DoubleChecker analysis for one run. Implements the interpreter's
/// checker hooks and Octet's transition listener.
class DoubleCheckerRuntime : public rt::CheckerRuntime,
                                   public octet::OctetListener {
public:
  /// \p P must be the compiled program the runtime executes (used to map
  /// compiled methods back to original sites). \p Violations and \p Stats
  /// must outlive the runtime.
  DoubleCheckerRuntime(const ir::Program &P, DoubleCheckerOptions Opts,
                       ViolationLog &Violations, StatisticRegistry &Stats);
  ~DoubleCheckerRuntime() override;

  // -- rt::CheckerRuntime --------------------------------------------------
  void beginRun(rt::Runtime &RT) override;
  void endRun(rt::Runtime &RT) override;
  void threadStarted(rt::ThreadContext &TC) override;
  void threadExiting(rt::ThreadContext &TC) override;
  void txBegin(rt::ThreadContext &TC, const ir::Method &M) override;
  void txEnd(rt::ThreadContext &TC, const ir::Method &M) override;
  void instrumentedAccess(rt::ThreadContext &TC, const rt::AccessInfo &Info,
                          function_ref<void()> Access) override;
  void syncOp(rt::ThreadContext &TC, const rt::AccessInfo &Info,
              rt::SyncKind Kind) override;
  void safePoint(rt::ThreadContext &TC) override;
  void aboutToBlock(rt::ThreadContext &TC) override;
  void unblocked(rt::ThreadContext &TC) override;
  void reportHealth(rt::RunResult &R) override;
  void healthSnapshot(rt::HealthSnapshot &H) override;
  bool windowFlush() override;

  // -- octet::OctetListener -------------------------------------------------
  void onConflictingEdge(uint32_t RespTid, const octet::Transition &T)
      override;
  void onBecameRdEx(uint32_t Tid) override;
  void onUpgradeToRdSh(uint32_t Tid, uint32_t OldOwner,
                       uint64_t Counter) override;
  void onFence(uint32_t Tid) override;

  /// Static transaction information accumulated from ICD SCCs (multi-run
  /// mode's first-run output). Flushes any pending batched detection pass
  /// so the snapshot is complete as of the call. Valid after endRun.
  StaticTransactionInfo staticInfo();

  /// The underlying Octet manager; valid between beginRun and destruction.
  octet::OctetManager *octetManager() { return Octet.get(); }

  /// The incremental cycle detector, or null in BatchedScc / PcdOnly /
  /// DetectIcdCycles=false modes. Test-only: the stripe-locality stress
  /// test installs its reorder hook here.
  IncrementalCycleDetector *icdDetector() { return Icd.get(); }
  /// Test-only: how many IDG stripes the calling thread holds right now
  /// (exact for self-queries; see StripedLockSet::heldBy). The locality
  /// test asserts from inside a reorder that this never reaches
  /// stripeCount().
  uint32_t stripesHeldByCurrentThread() const;
  uint32_t stripeCount() const { return NumShards; }

private:
  struct alignas(64) PerThread {
    std::atomic<Transaction *> CurrTx{nullptr}; ///< Written under own stripe.
    /// Log-elision timestamp (paper §4): bumped on transaction start and on
    /// any edge touching the thread's current transaction.
    std::atomic<uint64_t> CurTs{1};
    Transaction *LastRdEx = nullptr; ///< Own stripe.
    uint64_t NextSeq = 0;            ///< Own thread only (tx lifecycle).
    uint64_t NextEdgeSeq = 0;        ///< Own stripe (edge ids, src side).
    // Per-thread statistics, flushed at endRun.
    uint64_t RegularTxs = 0;
    uint64_t UnaryTxs = 0;
    uint64_t AccRegular = 0;
    uint64_t AccUnary = 0;
    uint64_t LogEntries = 0;
    uint64_t LogElided = 0;
    uint64_t BytesLogged = 0;
    uint64_t LogDropped = 0; ///< Accesses not logged while shedding.
    /// Degradation ladder (owner thread only): true while this thread has
    /// shed logging (ICD-only). Entered when a chunk refill is refused;
    /// re-armed after RearmAfterTxs new transactions if pressure subsided.
    bool LogShedActive = false;
    uint32_t RearmCountdown = 0;
    uint64_t ShedCount = 0;
    /// Gate-heartbeat throttle (owner thread only).
    uint32_t SafePointBeats = 0;
    /// Transactions allocated by this thread; pushed under own stripe,
    /// swept by the collector under all stripes.
    std::vector<Transaction *> Owned;
    /// Thread-local duplicate-access filter (default logging path); epochs
    /// are CurTs values, so the existing bumps invalidate it for free.
    ElisionFilter Filter;
    /// Chunk source for this thread's appends, refilled from ChunkPool.
    /// Arena/PcdOnly transports only; in ring mode it stays detached and
    /// empty — the drain side owns the only chunk cache (O(1), not
    /// O(threads)).
    LogChunkCache ChunkCache;
    // -- Ring transport (owner thread only) --------------------------------
    /// Cached target ring, derived from the CPU hint and refreshed every
    /// CpuHintRefresh commits; a stale hint after a migration is harmless
    /// (every ring is MPMC), it just shares a ring until the refresh.
    uint32_t RingIdx = 0;
    uint32_t CpuHintCountdown = 0;
    bool RingHintValid = false;
    uint64_t RingCommits = 0;
    uint64_t RingFullEvents = 0;
    uint64_t RingMigrations = 0;
    uint64_t RingSelfDrains = 0;
  };

  class PcdPool;
  class TxCollector;

  // -- IDG stripes ---------------------------------------------------------
  // Stripe 0 guards gLastRdSh; stripe Tid+1 guards thread Tid's IDG state
  // (CurrTx identity, lastRdEx, Owned, and the Out lists / HasCrossOut of
  // its transactions). SerializedIdg collapses everything onto stripe 0.
  // Lock order: ascending stripe index; SccStateLock / PcdOnlyLock are
  // innermost and never held while acquiring a stripe.
  uint32_t shardOf(uint32_t Tid) const {
    return Opts.SerializedIdg ? 0 : Tid + 1;
  }
  void lockShard(uint32_t S, uint32_t Holder);
  void unlockShard(uint32_t S) { IdgShards->unlock(S); }
  /// Acquires the N stripes in Shards (caller-sorted ascending), paying at
  /// most one remote-miss penalty for the whole batch — the stripes live on
  /// independent cache lines, so their coherence transfers overlap.
  void lockShards(const uint32_t *Shards, unsigned N, uint32_t Holder);
  void lockAllShards(uint32_t Holder);
  void unlockAllShards();
  /// Calibrated coherence-miss spin (DESIGN.md §2); result feeds
  /// PenaltySink so the loop is not optimized away.
  void spinPenalty(uint32_t Iters, uint64_t Seed);

  /// Requires shard(Tid). Installs and returns Tid's next transaction.
  Transaction *newTransactionLocked(uint32_t Tid, ir::MethodId Site,
                                    bool Regular);
  /// Finishes Tid's current transaction, then runs the out-of-line
  /// follow-ups (PCD-only feed, SCC detection, collection trigger).
  /// Caller must hold no stripe. CurrTx intentionally keeps pointing at
  /// the finished transaction until the next newTransactionLocked.
  void endCurrentTx(uint32_t Tid);
  /// Requires shard(Src->Tid) and shard(Dst->Tid). \p Phys is the physical
  /// thread executing the call (its chunk cache feeds the EdgeIn append).
  void addCrossEdgeLocked(Transaction *Src, Transaction *Dst, uint32_t Phys);
  /// Queues the just-finished, cross-edged \p V as a detection root and
  /// runs a batched pass once Opts.SccBatch roots are pending. Caller must
  /// hold no stripe.
  void pendSccRoot(Transaction *V, uint32_t Holder);
  /// Executes component claims the incremental detector produced: the
  /// exact post-claim logic of sccPass — site accumulation, the injected
  /// unsound filter, the degradation checks, the PCD hand-off, unpinning.
  /// Precise claims only arise on the retire()/finalize paths (no stripes
  /// held — the hand-off may block on queue backpressure); Oversized
  /// claims also arise under ≤ 2 stripes from edge insertion, where they
  /// touch only innermost locks.
  void executeIcdClaims(IncrementalCycleDetector::ClaimList &Claims);
  /// Batched Tarjan over finished transactions from every pending root;
  /// takes all stripes once for the whole batch. A component is claimed
  /// exactly by the pass whose root set contains its maximal-EndTime
  /// member (that member's end is when the cycle became complete, and each
  /// transaction is a root of exactly one pass).
  void sccPass(uint32_t Holder);
  /// One mark-sweep pass; takes all stripes, frees outside them.
  void collectNow(uint32_t Holder);
  /// Routes a collection trigger to the background collector (sharded) or
  /// runs it inline (SerializedIdg).
  void requestCollect(uint32_t Holder);
  /// Bounded wait at a transaction boundary while the live-tx budget is
  /// breached: lends the collector this thread's cycles (see definition).
  void collectBackpressure(uint32_t Tid);
  /// Returns the transaction the next access belongs to, replacing an
  /// interrupted unary transaction if needed. \p PT must be TC's block
  /// (hoisted by the caller so the hot path resolves it once).
  Transaction *currentForAccess(rt::ThreadContext &TC, PerThread &PT);
  void logAccess(rt::ThreadContext &TC, PerThread &PT, Transaction *Cur,
                 const rt::AccessInfo &Info);

  // -- Ring log transport (DESIGN.md §13) ----------------------------------
  /// Commits \p N slots of \p Tx's log at position \p Pos into the ring
  /// array: hinted ring first, one neighbour hop on contention, then a
  /// bounded self-drain-and-retry ladder when rings are full. Returns false
  /// when every rung failed — the caller sheds (never blocks, never drops
  /// silently). Callers publish Tx->LogLen only after a true return, so a
  /// concurrently sampled SrcPos always refers to published records.
  bool ringPublish(PerThread &PT, Transaction *Tx, uint32_t Pos,
                   const LogSlot *S, uint32_t N);
  /// Blocks (bounded by PcdStallTimeoutMs, helping the drain on the way)
  /// until every member's log is fully materialized — DrainedSlots has
  /// caught up with LogLen — or the member was shed. Returns false when a
  /// member is shed or the deadline passes: the caller must degrade the
  /// SCC to Potential instead of replaying. True (trivially) without the
  /// ring transport.
  bool awaitLogComplete(const std::vector<Transaction *> &Members);
  /// Body of the background drainer thread: drain all rings, sleep
  /// adaptively while idle, heartbeat the watchdog.
  void ringDrainLoop();

  // -- Overload / fault tolerance (DESIGN.md §10) --------------------------
  /// Records the first checker-internal fault (later ones only count).
  void recordFault(rt::CheckerFault F, std::string Diagnosis);
  /// Appends one ladder transition to the structured report.
  void recordDegradation(rt::DegradationEvent E);
  /// Enters shed mode for \p PT's thread: the current transaction's log is
  /// marked incomplete, further accesses are dropped (ICD-only), and a
  /// ShedLogging event is recorded with a deterministic OrderClock stamp.
  void beginShed(PerThread &PT, uint32_t Tid, Transaction *Cur);
  /// Degrades one detected SCC to a Potential violation record instead of
  /// a precise replay (members need not be pinned). \p Stamp is the SCC's
  /// max member EndTime — deterministic across configs.
  void degradeScc(const std::vector<Transaction *> &Members, uint64_t Stamp);
  /// Watchdog handler (monitor thread): map component -> CheckerFault.
  void onComponentStall(const std::string &Component, uint64_t SilentMs);

  // -- Streaming service mode (DESIGN.md §15) ------------------------------
  /// One retirement-window flush: force everything decidable as of the
  /// boundary to a decision (batched detection, ring drain, PCD drain),
  /// then collect synchronously so quiesced transactions retire. Returns
  /// false when any stage degraded (stall-timeout steal, shed member) —
  /// the window still completed, but some verdicts moved down the ladder
  /// to Potential. Serialized by WindowMu; caller must hold no stripes.
  bool windowFlushNow(uint32_t Holder);
  /// Fills a point-in-time health snapshot from atomics + the stats
  /// registry's stable-snapshot API. Safe mid-run from any thread.
  void fillHealth(rt::HealthSnapshot &H);

  const ir::Program &P;
  DoubleCheckerOptions Opts;
  ViolationLog &Violations;
  StatisticRegistry &Stats;

  /// Log publication path for this run, resolved once in the constructor:
  /// LegacyLog beats everything, then ThreadArenaLog / PcdOnly select the
  /// arena, and the per-CPU ring transport is the default.
  enum class LogTransport : uint8_t { Ring, Arena, Legacy };
  LogTransport Transport = LogTransport::Ring;

  std::unique_ptr<octet::OctetManager> Octet;
  std::unique_ptr<PreciseCycleDetector> Pcd;
  /// Incremental online cycle detection (the default); null selects the
  /// batched Tarjan passes (Opts.BatchedScc) and in PcdOnly /
  /// DetectIcdCycles=false modes.
  std::unique_ptr<IncrementalCycleDetector> Icd;
  /// Declared before the pool/collector: workers beat its slots, so it is
  /// destroyed after them (the dtor also resets explicitly in that order).
  std::unique_ptr<rt::Watchdog> Dog;
  std::unique_ptr<PcdPool> AsyncPcd;
  std::unique_ptr<OnlinePcd> PcdOnlyAnalysis;
  std::unique_ptr<TxCollector> Collector;
  std::unique_ptr<PerThread[]> Threads;
  uint32_t NumThreads = 0;
  uint32_t NumShards = 0;
  std::unique_ptr<StripedLockSet> IdgShards;

  /// Global free list backing every thread's chunk cache; the collector
  /// splices swept transactions' chunks back into it.
  LogChunkPool ChunkPool;

  /// Ring transport state (Transport == Ring and LogAccesses only). The
  /// drainer thread owns the steady-state drain; mutators self-drain when
  /// they find their ring full, and completeness waits drain too. DrainMu
  /// (inside RingLog) orders after any IDG stripes in the lock order.
  std::unique_ptr<RingLog> Ring;
  std::thread RingDrainer;
  std::atomic<bool> DrainerStop{false};
  /// Completeness waits that hit the deadline (SCC degraded instead).
  std::atomic<uint64_t> RingDrainStalls{0};

  /// Legacy path (LegacyLog): packed (tid | wasWrite | ts) cells for log
  /// duplicate elision, indexed by field address and shared by all threads.
  std::vector<std::atomic<uint64_t>> ElisionCells;
  /// Sticky multi-thread-logged marker per field (remote-miss simulation;
  /// LegacyLog only). Relaxed atomics: set/read racily by design, but
  /// data-race-free.
  std::vector<std::atomic<uint8_t>> CellContended;
  /// Keeps the penalty spin from being optimized away.
  std::atomic<uint64_t> PenaltySink{0};

  Transaction *GLastRdSh = nullptr; ///< Stripe 0.
  /// Global order clock: ticks at transaction ends and edge creations;
  /// stamps transaction EndTime and EdgeIn markers for PCD's replay-
  /// ordering constraints. A relaxed fetch_add preserves the invariant
  /// PCD needs (DESIGN.md §7): atomic RMWs on one object have a single
  /// modification order consistent with happens-before, so along every
  /// happens-before path stamps are strictly increasing.
  std::atomic<uint64_t> OrderClock{0};
  std::atomic<uint64_t> CrossEdges{0};
  std::atomic<uint64_t> FinishedTxs{0};
  std::atomic<uint64_t> SccCount{0};
  std::atomic<uint64_t> SccPasses{0};
  std::atomic<uint64_t> SccVisited{0};
  std::atomic<uint64_t> BackpressureWaits{0};
  std::atomic<uint64_t> CollectorRuns{0};
  std::atomic<uint64_t> CollectorNs{0};
  std::atomic<uint64_t> TxsSwept{0};
  /// Largest live set (kept transactions) any collection observed.
  std::atomic<uint64_t> CollectorLiveMax{0};
  uint64_t SccEpochCounter = 0;  ///< All stripes (Tarjan scratch epoch).
  uint64_t MarkEpochCounter = 0; ///< All stripes (collector mark epoch).

  /// Finished cross-edged transactions awaiting a batched detection pass.
  /// Guarded by PendingLock (innermost, never held while taking a stripe);
  /// the collector treats every entry as a strong mark root so undetected
  /// cycles survive until their pass.
  SpinLock PendingLock;
  std::vector<Transaction *> PendingSccRoots;

  /// Guards SccSites/SccAnyUnary (innermost; also used by staticInfo).
  mutable SpinLock SccStateLock;
  std::set<ir::MethodId> SccSites;
  bool SccAnyUnary = false;
  /// Serializes the PCD-only straw man's persistent analysis (innermost).
  SpinLock PcdOnlyLock;

  // -- Overload / fault tolerance (DESIGN.md §10) --------------------------
  /// Unified resource accounting (live txs, log bytes, PCD queue depth).
  ResourceGovernor Governor;
  /// The runtime of the current run (gate-stall aborts); beginRun..endRun.
  rt::Runtime *TheRT = nullptr;
  /// Watchdog slot ids (valid while Dog is set).
  uint32_t DogGateSlot = 0;
  uint32_t DogCollectorSlot = 0;
  uint32_t DogDrainerSlot = 0;
  uint32_t DogWindowSlot = 0;
  /// Serializes window flushes against each other (two threads can cross
  /// consecutive boundaries while the first flush is still draining).
  /// Ordered outermost: acquired before any stripe or checker lock.
  std::mutex WindowMu;
  /// Windows whose flush degraded work instead of fully quiescing.
  std::atomic<uint64_t> WindowDegraded{0};
  /// Flush counter keying FaultPlan::WindowStallAt.
  std::atomic<uint64_t> WindowFlushCounter{0};
  /// Guards the health report below (innermost; never held while taking
  /// any other checker lock).
  mutable SpinLock HealthLock;
  rt::CheckerFault Fault = rt::CheckerFault::None;
  std::string FaultDiagnosis;
  std::vector<rt::DegradationEvent> DegEvents;
};

} // namespace analysis
} // namespace dc

#endif // DC_ANALYSIS_DOUBLECHECKER_H
