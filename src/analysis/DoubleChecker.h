//===- analysis/DoubleChecker.h - ICD(+PCD) checker runtime -----*- C++ -*-===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// DoubleCheckerRuntime is the paper's analysis attached to one execution:
///
///  * It owns an OctetManager and implements OctetListener: every Octet
///    transition becomes an imprecise-dependence-graph edge per Figure 4
///    (conflicting -> edge from the responder's current transaction;
///    upgrading to RdSh -> edges from the old owner's lastRdEx and from
///    gLastRdSh; fence -> edge from gLastRdSh).
///  * It demarcates regular transactions at txBegin/txEnd and merges
///    non-transactional accesses into unary transactions until a
///    cross-thread edge interrupts them.
///  * When a transaction with cross-thread edges ends, it computes the
///    maximal SCC containing it over *finished* transactions (§3.2.3);
///    members' static sites feed multi-run mode's StaticTransactionInfo,
///    and — when logging is on — the SCC goes to PCD for precise checking.
///  * A mark-sweep collector reclaims transactions unreachable from the
///    roots {per-thread current transaction, per-thread lastRdEx,
///    gLastRdSh}, standing in for the JVM garbage collector the paper
///    relies on (see DESIGN.md §2 for the liveness argument).
///
/// Configure with LogAccesses=false, RunPcd=false for the first run of
/// multi-run mode ("ICD w/o logging"); defaults give single-run mode.
///
//===----------------------------------------------------------------------===//

#ifndef DC_ANALYSIS_DOUBLECHECKER_H
#define DC_ANALYSIS_DOUBLECHECKER_H

#include <memory>
#include <set>

#include "analysis/OnlinePcd.h"
#include "analysis/Pcd.h"
#include "analysis/StaticInfo.h"
#include "analysis/Transaction.h"
#include "analysis/Violation.h"
#include "octet/OctetManager.h"
#include "rt/CheckerRuntime.h"
#include "rt/Runtime.h"
#include "support/SpinLock.h"
#include "support/Statistic.h"

namespace dc {
namespace analysis {

/// Knobs selecting between single-run mode and the runs of multi-run mode.
struct DoubleCheckerOptions {
  /// Record read/write logs (required for PCD). Single-run and the second
  /// run of multi-run mode: true. First run: false.
  bool LogAccesses = true;
  /// Run PCD on each ICD SCC. First run: false.
  bool RunPcd = true;
  /// Future-work extension the paper suggests for the xalan6 bottleneck
  /// ("ICD detects SCCs serially, and PCD detects cycles serially; making
  /// them parallel could alleviate this bottleneck", §5.3): offload PCD to
  /// a background worker thread. SCC members are finished (immutable logs)
  /// and pinned against collection while queued, so the replay needs no
  /// locks. Violations may be reported slightly later but identically.
  bool ParallelPcd = false;
  /// Disable ICD SCC detection entirely (§5.4 array-instrumentation
  /// ablation, where conflated metadata makes cycles meaningless).
  bool DetectIcdCycles = true;
  /// §5.4 straw man: feed *every* transaction to a persistent precise
  /// analysis instead of filtering through ICD SCCs. Implies LogAccesses;
  /// the transaction collector is disabled (the persistent maps pin
  /// transactions), reproducing the variant's memory blow-up.
  bool PcdOnly = false;
  /// Trigger the transaction collector every this many finished
  /// transactions.
  uint32_t CollectEveryTx = 8192;
  /// Passed through to PCD.
  uint32_t MaxSccTxsForPcd = 1u << 20;
  /// Remote-cache-miss simulation for the log-elision metadata, mirroring
  /// VelodromeOptions::RemoteMissPenalty (see DESIGN.md §2): appending a
  /// log entry rewrites the field's per-thread timestamp cell, which on a
  /// real multicore ping-pongs for fields logged by several threads. One
  /// cell write is half of Velodrome's two-word locked update, hence the
  /// smaller default. 0 disables.
  uint32_t LogRemoteMissPenalty = 15;
};

/// The DoubleChecker analysis for one run. Implements the interpreter's
/// checker hooks and Octet's transition listener.
class DoubleCheckerRuntime : public rt::CheckerRuntime,
                                   public octet::OctetListener {
public:
  /// \p P must be the compiled program the runtime executes (used to map
  /// compiled methods back to original sites). \p Violations and \p Stats
  /// must outlive the runtime.
  DoubleCheckerRuntime(const ir::Program &P, DoubleCheckerOptions Opts,
                       ViolationLog &Violations, StatisticRegistry &Stats);
  ~DoubleCheckerRuntime() override;

  // -- rt::CheckerRuntime --------------------------------------------------
  void beginRun(rt::Runtime &RT) override;
  void endRun(rt::Runtime &RT) override;
  void threadStarted(rt::ThreadContext &TC) override;
  void threadExiting(rt::ThreadContext &TC) override;
  void txBegin(rt::ThreadContext &TC, const ir::Method &M) override;
  void txEnd(rt::ThreadContext &TC, const ir::Method &M) override;
  void instrumentedAccess(rt::ThreadContext &TC, const rt::AccessInfo &Info,
                          function_ref<void()> Access) override;
  void syncOp(rt::ThreadContext &TC, const rt::AccessInfo &Info,
              rt::SyncKind Kind) override;
  void safePoint(rt::ThreadContext &TC) override;
  void aboutToBlock(rt::ThreadContext &TC) override;
  void unblocked(rt::ThreadContext &TC) override;

  // -- octet::OctetListener -------------------------------------------------
  void onConflictingEdge(uint32_t RespTid, const octet::Transition &T)
      override;
  void onBecameRdEx(uint32_t Tid) override;
  void onUpgradeToRdSh(uint32_t Tid, uint32_t OldOwner,
                       uint64_t Counter) override;
  void onFence(uint32_t Tid) override;

  /// Static transaction information accumulated from ICD SCCs (multi-run
  /// mode's first-run output). Valid after endRun.
  StaticTransactionInfo staticInfo() const;

  /// The underlying Octet manager; valid between beginRun and destruction.
  octet::OctetManager *octetManager() { return Octet.get(); }

private:
  struct alignas(64) PerThread {
    std::atomic<Transaction *> CurrTx{nullptr};
    /// Log-elision timestamp (paper §4): bumped on transaction start and on
    /// any edge touching the thread's current transaction.
    std::atomic<uint64_t> CurTs{1};
    Transaction *LastRdEx = nullptr; // IDG lock.
    uint64_t NextSeq = 0;
    // Per-thread statistics, flushed at endRun.
    uint64_t RegularTxs = 0;
    uint64_t UnaryTxs = 0;
    uint64_t AccRegular = 0;
    uint64_t AccUnary = 0;
    uint64_t LogEntries = 0;
    uint64_t LogElided = 0;
    // Transactions allocated by this thread (swept by the collector).
    std::vector<Transaction *> Owned;
    SpinLock OwnedLock;
  };

  class AsyncPcdWorker;

  Transaction *newTransactionLocked(uint32_t Tid, ir::MethodId Site,
                                    bool Regular);
  void endCurrentTxLocked(uint32_t Tid);
  void addCrossEdgeLocked(Transaction *Src, Transaction *Dst);
  void sccFromLocked(Transaction *V);
  void collectLocked();
  /// Returns the transaction the next access belongs to, replacing an
  /// interrupted unary transaction if needed.
  Transaction *currentForAccess(rt::ThreadContext &TC);
  void logAccess(rt::ThreadContext &TC, Transaction *Cur,
                 const rt::AccessInfo &Info);

  const ir::Program &P;
  DoubleCheckerOptions Opts;
  ViolationLog &Violations;
  StatisticRegistry &Stats;

  std::unique_ptr<octet::OctetManager> Octet;
  std::unique_ptr<PreciseCycleDetector> Pcd;
  std::unique_ptr<AsyncPcdWorker> AsyncPcd;
  std::unique_ptr<OnlinePcd> PcdOnlyAnalysis;
  std::unique_ptr<PerThread[]> Threads;
  uint32_t NumThreads = 0;

  /// Packed (tid | wasWrite | ts) cells for log duplicate elision, indexed
  /// by field address.
  std::vector<std::atomic<uint64_t>> ElisionCells;
  /// Sticky multi-thread-logged marker per field (remote-miss simulation;
  /// benign races).
  std::vector<uint8_t> CellContended;
  /// Keeps the penalty spin from being optimized away.
  std::atomic<uint64_t> PenaltySink{0};

  /// Guards the IDG: edges, lastRdEx/gLastRdSh, transaction lifecycle, SCC
  /// detection, PCD, and collection all serialize here (the paper's ICD
  /// detects SCCs serially).
  mutable SpinLock IdgLock;
  Transaction *GLastRdSh = nullptr;
  /// Global order clock: ticks at transaction ends and edge creations
  /// (already serialized by IdgLock); stamps transaction EndTime and
  /// EdgeIn markers for PCD's replay-ordering constraints.
  uint64_t OrderClock = 0;
  uint64_t NextTxId = 0;
  uint64_t NextEdgeId = 0;
  uint64_t CrossEdges = 0;
  uint64_t FinishedTxs = 0;
  uint64_t SccCount = 0;
  uint64_t SccEpochCounter = 0;
  uint64_t MarkEpochCounter = 0;
  uint64_t CollectorRuns = 0;
  uint64_t CollectorNs = 0;
  uint64_t TxsSwept = 0;
  std::set<ir::MethodId> SccSites;
  bool SccAnyUnary = false;
};

} // namespace analysis
} // namespace dc

#endif // DC_ANALYSIS_DOUBLECHECKER_H
