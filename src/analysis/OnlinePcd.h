//===- analysis/OnlinePcd.h - PCD-only straw-man variant --------*- C++ -*-===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The §5.4 "PCD-only" configuration: PCD processes *every* executed
/// transaction, not just ICD-identified cycles — "something of a straw man
/// since PCD essentially implements a less-efficient version of
/// Velodrome's algorithm". Transactions are processed as they finish,
/// replaying their logs against persistent last-access state and a
/// persistent PDG with a cycle check per cross-thread edge. Because the
/// persistent maps pin transactions, the transaction collector must be
/// disabled in this mode (the paper's PCD-only variant ran out of memory
/// on four benchmarks; the blow-up is the expected behaviour).
///
//===----------------------------------------------------------------------===//

#ifndef DC_ANALYSIS_ONLINEPCD_H
#define DC_ANALYSIS_ONLINEPCD_H

#include <unordered_map>
#include <vector>

#include "analysis/Transaction.h"
#include "analysis/Violation.h"
#include "support/Statistic.h"

namespace dc {
namespace analysis {

/// Precise analysis over every transaction, applied at transaction end.
class OnlinePcd {
public:
  OnlinePcd(ViolationLog &Sink, StatisticRegistry &Stats)
      : Sink(Sink), Stats(Stats) {}

  /// Replays \p Tx's log against the persistent state. Caller holds the
  /// IDG lock; \p Tx must be finished.
  void processTransaction(Transaction *Tx);

private:
  void addEdge(Transaction *From, Transaction *To);
  void checkCycle(Transaction *From, Transaction *To);

  ViolationLog &Sink;
  StatisticRegistry &Stats;

  std::unordered_map<rt::FieldAddr, Transaction *> LastWrite;
  std::unordered_map<rt::FieldAddr,
                     std::unordered_map<uint32_t, Transaction *>>
      LastReads;
  /// Persistent PDG adjacency with creation indices (blame assignment).
  std::unordered_map<Transaction *,
                     std::vector<std::pair<Transaction *, uint64_t>>>
      Pdg;
  std::unordered_map<const Transaction *,
                     std::unordered_map<const Transaction *, uint64_t>>
      EdgeCreation;
  std::unordered_map<uint32_t, Transaction *> LastOfThread;
  uint64_t NextCreation = 0;
  uint64_t DfsEpoch = 0;
};

} // namespace analysis
} // namespace dc

#endif // DC_ANALYSIS_ONLINEPCD_H
