//===- analysis/Transaction.h - IDG nodes and read/write logs ---*- C++ -*-===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Transactions are the nodes of ICD's imprecise dependence graph (IDG):
/// regular transactions correspond to atomic regions; unary transactions
/// absorb non-transactional accesses (consecutive unary transactions merge
/// until a cross-thread edge interrupts them, per §4 of the paper).
///
/// Each transaction carries its outgoing IDG edges and, in logging modes,
/// a read/write log. Cross-thread ordering for PCD's replay is encoded as:
///  * an EdgeIn marker in the *sink's* log (always appended by a thread
///    that owns or holds the sink quiescent), and
///  * a sampled source-log position (SrcPos) in the edge record itself.
/// Sampling instead of appending a source marker avoids writing to a live
/// transaction's log from another thread. The sampled position is exact for
/// conflicting transitions (the source is at a safe point or blocked) and
/// conservative for upgrading/fence edges — where any concurrently-logged
/// source entries are reads that commute with the sink's accesses, so the
/// replay order PCD reconstructs is still a valid linearization.
///
/// Log storage (DESIGN.md §8): the default path packs records into 16-byte
/// slots chained through fixed-size arena chunks (LogArena.h) — appends
/// never reallocate, move, or copy. The seed's std::vector<LogEntry> path
/// is kept behind DoubleCheckerOptions::LegacyLog for differential testing;
/// LogCursor reads either representation. Positions (SrcPos, LogLen) count
/// *slots* on the packed path and *entries* on the legacy path — a run
/// uses one path throughout, so comparisons are always same-unit.
///
/// LogLen publication contract: appendLog publishes the log's length with
/// release order once per *record* (after both slots of an EdgeIn), so a
/// lock-free SrcPos sample is always ≤ the owner's published length and
/// always lands on a record boundary.
///
/// Field guards under the sharded IDG (DESIGN.md §7): mutable per-node
/// state (Out, HasCrossOut, EndTime, the Log) is guarded by the owning
/// thread's IDG stripe; a cross-edge writer holds both endpoints' stripes.
/// Tarjan and the collector hold every stripe, which freezes the graph and
/// licenses their use of the unsynchronized scratch fields. Once Finished
/// is set (release, under the owner's stripe) the log and incoming-edge
/// set are immutable, which is what lets PCD replay members without locks.
///
//===----------------------------------------------------------------------===//

#ifndef DC_ANALYSIS_TRANSACTION_H
#define DC_ANALYSIS_TRANSACTION_H

#include <atomic>
#include <cstdint>
#include <vector>

#include "analysis/LogArena.h"
#include "ir/Ir.h"
#include "rt/Heap.h"
#include "support/InlineVec.h"

namespace dc {
namespace analysis {

class Transaction;
struct IcdGroup;    // IncrementalCycles.h
struct IcdEdgeNode; // IncrementalCycles.h

/// One decoded entry of a transaction's read/write log (also the legacy
/// path's stored representation). EdgeIn markers record the edge's *source
/// coordinates* — (source thread, source SeqInThread, sampled source log
/// position) — so PCD can enforce the ordering even when the source
/// transaction itself is outside the SCC being replayed: the constraint
/// then falls back to "all same-thread transactions before the source must
/// have replayed", which the source's thread order implies.
struct LogEntry {
  enum class Kind : uint8_t {
    Read,
    Write,
    EdgeIn, ///< A cross-thread edge whose sink is at this position.
  };
  Kind K = Kind::Read;
  rt::ObjectId Obj = 0;   ///< Access: object. EdgeIn: source thread id.
  rt::FieldAddr Addr = 0; ///< Access: field. EdgeIn: source log position.
  uint64_t SrcSeq = 0;    ///< EdgeIn: source transaction's SeqInThread.
  /// EdgeIn: the edge's stamp on ICD's global order clock. Replay requires
  /// every SCC member that *ended* before this stamp to have fully
  /// replayed before the sink proceeds past the marker — recovering
  /// orderings whose happens-before chain runs through transactions
  /// outside the SCC (e.g. a lock handed off via a non-member).
  uint64_t Time = 0;
};

/// An outgoing IDG edge. Intra-thread edges link consecutive transactions
/// of one thread; cross-thread edges come from Octet transitions (Fig. 4).
struct OutEdge {
  Transaction *Dst = nullptr;
  uint64_t Id = 0;
  /// Sink log entries after the EdgeIn marker happen after source log
  /// entries before SrcPos.
  uint32_t SrcPos = 0;
  bool Intra = false;
};

/// An IDG node. Allocated by DoubleCheckerRuntime's arena; reclaimed by its
/// mark-sweep collector once unreachable from any root (see DESIGN.md §2).
class Transaction {
public:
  Transaction(uint64_t Id, uint32_t Tid, uint64_t SeqInThread,
              ir::MethodId Site, bool Regular)
      : Id(Id), Tid(Tid), SeqInThread(SeqInThread), Site(Site),
        Regular(Regular) {}

  const uint64_t Id;
  const uint32_t Tid;
  /// Position in the owning thread's transaction sequence; same-thread IDG
  /// order (and PCD replay order) follows this.
  const uint64_t SeqInThread;
  /// Original (pre-instrumentation) method id for regular transactions;
  /// ir::InvalidMethodId for unary transactions.
  const ir::MethodId Site;
  const bool Regular;

  /// Set once when the transaction ends; SCC detection only expands
  /// finished transactions (§3.2.3).
  std::atomic<bool> Finished{false};

  /// Stamp on ICD's global order clock when the transaction ended
  /// (~0 while running / for hand-built transactions with no stamp).
  /// Written under the owner's stripe just before Finished; unique per
  /// transaction, so concurrent SCC detections that find the same
  /// component agree on which member (the maximal EndTime) processes it.
  uint64_t EndTime = ~0ULL;

  /// True once a cross-thread edge leaves this transaction. Only such
  /// transactions are pended as SCC detection roots: a cycle is claimed by
  /// its maximal-EndTime member, and that member always has an *outgoing*
  /// cross edge by the time it ends — every cycle edge was created while
  /// its target was unfinished, all other members end earlier, so the edge
  /// leaving the claiming member predates its end (and it cannot be the
  /// intra edge, whose target ends later). Incoming edges don't qualify:
  /// the intra edge from the predecessor always provides a way in.
  bool HasCrossOut = false; // Guarded by the owner's IDG stripe.

  /// True once a cross-thread edge enters this transaction (frozen when it
  /// finishes — edges only ever target unfinished transactions). A node
  /// with neither flag has exactly one relevant edge in each direction
  /// (the intra chain), so SCC walks skip straight across it; see
  /// DoubleCheckerRuntime::sccPass.
  bool HasCrossIn = false; // Guarded by the owner's IDG stripe.

  /// For unary transactions: a cross-thread edge interrupted the merge;
  /// the next non-transactional access starts a fresh unary transaction.
  std::atomic<bool> Interrupted{false};

  /// The owning thread shed logging while this transaction was live, so its
  /// log is incomplete and precise replay of any SCC containing it would be
  /// unsound — such SCCs are degraded to potential violations instead.
  /// Written by the owner (relaxed, outside stripes); read during SCC
  /// passes under all stripes.
  std::atomic<bool> LogShed{false};

  /// Outgoing edges (guarded by the owner's IDG stripe).
  std::vector<OutEdge> Out;

  /// Read/write log, appended by the owning thread (accesses) or by the
  /// edge-adding thread while the owner is provably quiescent (EdgeIn).
  /// Packed chunked storage; see LogArena.h.
  ChunkedLog Log;
  /// Legacy storage (DoubleCheckerOptions::LegacyLog): the seed's
  /// reallocating vector of 32-byte entries. A transaction uses exactly
  /// one representation, decided by which append method feeds it.
  std::vector<LogEntry> VecLog;
  /// Published length of the log (slots for Log, entries for VecLog),
  /// sampled lock-free for edge SrcPos. Published once per record with
  /// release order — this is the only shared-visible write an append
  /// performs on the packed path.
  std::atomic<uint32_t> LogLen{0};

  /// Ring transport only: slots the drain side has materialized into Log
  /// (or accounted as shed). The log is replay-complete when this reaches
  /// LogLen on a Finished transaction. Written under the ring drain lock
  /// with release order; completeness waiters read with acquire, which
  /// makes the materialized chain visible to the replayer.
  std::atomic<uint32_t> DrainedSlots{0};

  /// Appends to the packed log. \p Cache supplies recycled chunks on the
  /// runtime hot path; null (tests, hand-built SCCs) falls back to plain
  /// allocation.
  void appendLog(const LogEntry &E, LogChunkCache *Cache = nullptr) {
    if (E.K == LogEntry::Kind::EdgeIn)
      Log.appendEdgeIn(E.Obj, E.Addr, E.SrcSeq, E.Time, Cache);
    else
      Log.appendAccess(E.Obj, E.Addr, E.K == LogEntry::Kind::Write, Cache);
    LogLen.store(Log.size(), std::memory_order_release);
  }

  /// Appends to the legacy vector log (DoubleCheckerOptions::LegacyLog).
  void appendLogLegacy(const LogEntry &E) {
    VecLog.push_back(E);
    LogLen.store(static_cast<uint32_t>(VecLog.size()),
                 std::memory_order_release);
  }

  // --- Scratch state for Tarjan SCC, epoch-stamped to avoid clearing ---
  uint64_t SccEpoch = 0;
  uint32_t SccIndex = 0;
  uint32_t SccLow = 0;
  bool OnStack = false;
  /// Pass stamp set (under all stripes) on the roots of the batched
  /// detection pass currently running; a component is claimed exactly by
  /// the pass whose root set contains its maximal-EndTime member.
  uint64_t RootEpoch = 0;

  // --- Scratch state for the mark-sweep collector ---
  uint64_t MarkEpoch = 0;

  // --- Scratch state for incremental cycle detection (IncrementalCycles.h)
  //
  // Reorder-sensitive fields (order key, group pointer) are mutated only
  // under the detector's internal lock in seqlock writer mode, but they are
  // *read* lock-free by addEdge's consistent-edge fast path, so they are
  // atomics validated against the detector's reorder seqlock. The adjacency
  // heads are lock-free MPSC push chains. The stripe discipline cannot
  // cover any of this: edge inserts reorder transactions owned by threads
  // whose stripes the inserting thread does not hold. The detector never
  // dereferences a transaction the collector has freed — collectNow unlinks
  // doomed nodes (IncrementalCycleDetector::removeNodes) while it still
  // holds every stripe, before any free.
  /// Position in the maintained topological order (vertices that were
  /// merged into a confirmed cycle share their group's order key instead).
  /// Written in seqlock writer mode; fast-path reads validate via readRetry.
  std::atomic<uint64_t> IcdOrd{0};
  /// Condensation vertex this node was merged into, once it is known to be
  /// on a cycle; null while the node is a singleton vertex. Installed with
  /// release order so a fast-path acquire load sees the group initialized.
  std::atomic<IcdGroup *> IcdG{nullptr};
  /// Detector-private adjacency (the IDG's Out is stripe-guarded and
  /// append-only, so the detector keeps its own symmetric lists it can
  /// traverse backwards and unlink from). Singly-linked push chains of
  /// detector-owned IcdEdgeNode cells: the lock-free fast path publishes a
  /// node with a release CAS on the head, searches under the detector lock
  /// load the head with acquire order and walk plain Next pointers. Each
  /// logical edge Src→Dst is two nodes: one on Src's out-chain
  /// (Peer = Dst) and one on Dst's in-chain (Peer = Src).
  std::atomic<IcdEdgeNode *> IcdOutHead{nullptr};
  std::atomic<IcdEdgeNode *> IcdInHead{nullptr};
  /// Program-order chain: consecutive transactions of one thread. Kept
  /// outside IcdIn/IcdOut so linking a new transaction is lock-free — the
  /// owner writes the pointer once (release) while it still holds its own
  /// stripe, and detector searches (acquire) see it happens-before any
  /// cross edge that could put the new transaction on a cycle.
  std::atomic<Transaction *> IcdChainNext{nullptr};
  std::atomic<Transaction *> IcdChainPrev{nullptr};
  /// Visit stamp for the detector's bounded searches.
  uint64_t IcdEpoch = 0;
  /// Set by IncrementalCycleDetector::retire when the transaction's end has
  /// been observed; the last member of a confirmed cycle to retire claims
  /// the component.
  bool IcdRetired = false;

  /// Pin count held across PCD replays: the detecting thread pins every
  /// member (under all stripes) before releasing them, and the replaying
  /// side — an inline call or a pool worker — unpins with release order
  /// after the replay; the collector's acquire read of a zero pin count
  /// therefore happens-after the last access to the member's log.
  std::atomic<uint32_t> Pins{0};
};

/// Sequential reader over a transaction's log, transparent to the storage
/// representation. pos() is in the same units as LogLen/SrcPos (slots on
/// the packed path, entries on the legacy path), so replay's "source has
/// passed position P" checks compare like with like. Only valid while the
/// log is stable (transaction Finished, or single-threaded tests).
class LogCursor {
public:
  LogCursor() = default;

  explicit LogCursor(const Transaction &Tx) {
    if (!Tx.VecLog.empty()) {
      Vec = &Tx.VecLog;
      End = static_cast<uint32_t>(Tx.VecLog.size());
    } else {
      Chunk = Tx.Log.head();
      End = Tx.Log.size();
    }
  }

  bool atEnd() const { return Pos >= End; }
  uint32_t pos() const { return Pos; }

  /// Decodes the record at the cursor. Requires !atEnd().
  LogEntry current() const {
    if (Vec != nullptr)
      return (*Vec)[Pos];
    const LogSlot &S = slot(0);
    LogEntry E;
    switch (S.Meta & SlotTagMask) {
    case SlotTagRead:
      E.K = LogEntry::Kind::Read;
      break;
    case SlotTagWrite:
      E.K = LogEntry::Kind::Write;
      break;
    default:
      E.K = LogEntry::Kind::EdgeIn;
      break;
    }
    E.Obj = S.A;
    E.Addr = S.B;
    if (E.K == LogEntry::Kind::EdgeIn) {
      E.SrcSeq = S.Meta >> 2;
      E.Time = slot(1).Meta; // Continuation slot.
    }
    return E;
  }

  /// Consumes the current record (1 slot; 2 for EdgeIn on the packed path).
  void advance() {
    if (Vec != nullptr) {
      ++Pos;
      return;
    }
    const uint32_t N =
        (slot(0).Meta & SlotTagMask) == SlotTagEdgeIn ? 2 : 1;
    for (uint32_t I = 0; I < N; ++I) {
      ++Pos;
      if (++InChunk == LogChunk::SlotsPerChunk && Pos < End) {
        Chunk = Chunk->Next;
        InChunk = 0;
      }
    }
  }

private:
  /// Slot \p Ahead slots past the cursor (0 or 1; records may straddle a
  /// chunk boundary).
  const LogSlot &slot(uint32_t Ahead) const {
    assert(Pos + Ahead < End && "reading past the published log");
    uint32_t Idx = InChunk + Ahead;
    const LogChunk *C = Chunk;
    if (Idx >= LogChunk::SlotsPerChunk) {
      Idx -= LogChunk::SlotsPerChunk;
      C = C->Next;
    }
    return C->Slots[Idx];
  }

  const std::vector<LogEntry> *Vec = nullptr; ///< Legacy path; else chunks.
  const LogChunk *Chunk = nullptr;
  uint32_t InChunk = 0;
  uint32_t Pos = 0;
  uint32_t End = 0;
};

} // namespace analysis
} // namespace dc

#endif // DC_ANALYSIS_TRANSACTION_H
