//===- analysis/Transaction.h - IDG nodes and read/write logs ---*- C++ -*-===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Transactions are the nodes of ICD's imprecise dependence graph (IDG):
/// regular transactions correspond to atomic regions; unary transactions
/// absorb non-transactional accesses (consecutive unary transactions merge
/// until a cross-thread edge interrupts them, per §4 of the paper).
///
/// Each transaction carries its outgoing IDG edges and, in logging modes,
/// a read/write log. Cross-thread ordering for PCD's replay is encoded as:
///  * an EdgeIn marker in the *sink's* log (always appended by a thread
///    that owns or holds the sink quiescent), and
///  * a sampled source-log position (SrcPos) in the edge record itself.
/// Sampling instead of appending a source marker avoids writing to a live
/// transaction's log from another thread. The sampled position is exact for
/// conflicting transitions (the source is at a safe point or blocked) and
/// conservative for upgrading/fence edges — where any concurrently-logged
/// source entries are reads that commute with the sink's accesses, so the
/// replay order PCD reconstructs is still a valid linearization.
///
/// Field guards under the sharded IDG (DESIGN.md §7): mutable per-node
/// state (Out, HasCrossEdge, EndTime, the Log) is guarded by the owning
/// thread's IDG stripe; a cross-edge writer holds both endpoints' stripes.
/// Tarjan and the collector hold every stripe, which freezes the graph and
/// licenses their use of the unsynchronized scratch fields. Once Finished
/// is set (release, under the owner's stripe) the log and incoming-edge
/// set are immutable, which is what lets PCD replay members without locks.
///
//===----------------------------------------------------------------------===//

#ifndef DC_ANALYSIS_TRANSACTION_H
#define DC_ANALYSIS_TRANSACTION_H

#include <atomic>
#include <cstdint>
#include <vector>

#include "ir/Ir.h"
#include "rt/Heap.h"

namespace dc {
namespace analysis {

class Transaction;

/// One entry of a transaction's read/write log. EdgeIn markers record the
/// edge's *source coordinates* — (source thread, source SeqInThread,
/// sampled source log position) — so PCD can enforce the ordering even when
/// the source transaction itself is outside the SCC being replayed: the
/// constraint then falls back to "all same-thread transactions before the
/// source must have replayed", which the source's thread order implies.
struct LogEntry {
  enum class Kind : uint8_t {
    Read,
    Write,
    EdgeIn, ///< A cross-thread edge whose sink is at this position.
  };
  Kind K = Kind::Read;
  rt::ObjectId Obj = 0;   ///< Access: object. EdgeIn: source thread id.
  rt::FieldAddr Addr = 0; ///< Access: field. EdgeIn: source log position.
  uint64_t SrcSeq = 0;    ///< EdgeIn: source transaction's SeqInThread.
  /// EdgeIn: the edge's stamp on ICD's global order clock. Replay requires
  /// every SCC member that *ended* before this stamp to have fully
  /// replayed before the sink proceeds past the marker — recovering
  /// orderings whose happens-before chain runs through transactions
  /// outside the SCC (e.g. a lock handed off via a non-member).
  uint64_t Time = 0;
};

/// An outgoing IDG edge. Intra-thread edges link consecutive transactions
/// of one thread; cross-thread edges come from Octet transitions (Fig. 4).
struct OutEdge {
  Transaction *Dst = nullptr;
  uint64_t Id = 0;
  /// Sink log entries after the EdgeIn marker happen after source log
  /// entries before SrcPos.
  uint32_t SrcPos = 0;
  bool Intra = false;
};

/// An IDG node. Allocated by DoubleCheckerRuntime's arena; reclaimed by its
/// mark-sweep collector once unreachable from any root (see DESIGN.md §2).
class Transaction {
public:
  Transaction(uint64_t Id, uint32_t Tid, uint64_t SeqInThread,
              ir::MethodId Site, bool Regular)
      : Id(Id), Tid(Tid), SeqInThread(SeqInThread), Site(Site),
        Regular(Regular) {}

  const uint64_t Id;
  const uint32_t Tid;
  /// Position in the owning thread's transaction sequence; same-thread IDG
  /// order (and PCD replay order) follows this.
  const uint64_t SeqInThread;
  /// Original (pre-instrumentation) method id for regular transactions;
  /// ir::InvalidMethodId for unary transactions.
  const ir::MethodId Site;
  const bool Regular;

  /// Set once when the transaction ends; SCC detection only expands
  /// finished transactions (§3.2.3).
  std::atomic<bool> Finished{false};

  /// Stamp on ICD's global order clock when the transaction ended
  /// (~0 while running / for hand-built transactions with no stamp).
  /// Written under the owner's stripe just before Finished; unique per
  /// transaction, so concurrent SCC detections that find the same
  /// component agree on which member (the maximal EndTime) processes it.
  uint64_t EndTime = ~0ULL;

  /// True once any cross-thread edge touches this transaction; ended
  /// transactions without cross edges cannot be the last-finishing member
  /// of a cycle, so SCC detection is skipped for them.
  bool HasCrossEdge = false; // Guarded by the owner's IDG stripe.

  /// For unary transactions: a cross-thread edge interrupted the merge;
  /// the next non-transactional access starts a fresh unary transaction.
  std::atomic<bool> Interrupted{false};

  /// Outgoing edges (guarded by the owner's IDG stripe).
  std::vector<OutEdge> Out;

  /// Read/write log, appended by the owning thread (accesses) or by the
  /// edge-adding thread while the owner is provably quiescent (EdgeIn).
  std::vector<LogEntry> Log;
  /// Published length of Log, sampled lock-free for edge SrcPos.
  std::atomic<uint32_t> LogLen{0};

  void appendLog(const LogEntry &E) {
    Log.push_back(E);
    LogLen.store(static_cast<uint32_t>(Log.size()),
                 std::memory_order_release);
  }

  // --- Scratch state for Tarjan SCC, epoch-stamped to avoid clearing ---
  uint64_t SccEpoch = 0;
  uint32_t SccIndex = 0;
  uint32_t SccLow = 0;
  bool OnStack = false;
  /// Pass stamp set (under all stripes) on the roots of the batched
  /// detection pass currently running; a component is claimed exactly by
  /// the pass whose root set contains its maximal-EndTime member.
  uint64_t RootEpoch = 0;

  // --- Scratch state for the mark-sweep collector ---
  uint64_t MarkEpoch = 0;

  /// Pin count held across PCD replays: the detecting thread pins every
  /// member (under all stripes) before releasing them, and the replaying
  /// side — an inline call or a pool worker — unpins with release order
  /// after the replay; the collector's acquire read of a zero pin count
  /// therefore happens-after the last access to the member's log.
  std::atomic<uint32_t> Pins{0};
};

} // namespace analysis
} // namespace dc

#endif // DC_ANALYSIS_TRANSACTION_H
