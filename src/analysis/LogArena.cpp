//===- analysis/LogArena.cpp ----------------------------------------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/LogArena.h"

using namespace dc;
using namespace dc::analysis;

LogChunkPool::~LogChunkPool() {
  for (LogChunk *C = Free; C != nullptr;) {
    LogChunk *Next = C->Next;
    delete C;
    C = Next;
  }
}

LogChunk *LogChunkPool::popBatch(uint32_t Max) {
  LogChunk *Chain = nullptr;
  uint32_t Got = 0;
  {
    SpinLockGuard Guard(Lock);
    while (Got < Max && Free != nullptr) {
      LogChunk *C = Free;
      Free = C->Next;
      C->Next = Chain;
      Chain = C;
      ++Got;
    }
  }
  if (Got != 0)
    Reuses.fetch_add(Got, std::memory_order_relaxed);
  if (Got < Max) {
    Allocs.fetch_add(Max - Got, std::memory_order_relaxed);
    for (; Got < Max; ++Got) {
      LogChunk *C = new LogChunk();
      C->Next = Chain;
      Chain = C;
    }
  }
  if (Gov != nullptr)
    Gov->logBytes(static_cast<int64_t>(Max) * sizeof(LogChunk));
  return Chain;
}

void LogChunkPool::recycle(LogChunk *Head, LogChunk *Tail, uint64_t N) {
  if (Head == nullptr)
    return;
  if (Gov != nullptr)
    Gov->logBytes(-static_cast<int64_t>(N) * sizeof(LogChunk));
  SpinLockGuard Guard(Lock);
  Tail->Next = Free;
  Free = Head;
}

bool LogChunkPool::admitRefill() {
  uint64_t N = RefillCalls.fetch_add(1, std::memory_order_relaxed) + 1;
  if (FailAt != 0 && N == FailAt) {
    Refusals.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (Gov != nullptr && (Gov->pressure() & PressureLogBytes) != 0) {
    Refusals.fetch_add(1, std::memory_order_relaxed);
    Gov->countBreach();
    return false;
  }
  return true;
}

LogChunkCache::~LogChunkCache() {
  for (LogChunk *C = Free; C != nullptr;) {
    LogChunk *Next = C->Next;
    delete C;
    C = Next;
  }
}

LogChunk *LogChunkCache::tryGet() {
  if (Free == nullptr) {
    if (Pool == nullptr)
      return new LogChunk();
    if (!Pool->admitRefill())
      return nullptr;
    Free = Pool->popBatch(RefillBatch);
    Count = RefillBatch;
  }
  LogChunk *C = Free;
  Free = C->Next;
  --Count;
  C->Next = nullptr;
  return C;
}

LogChunk *LogChunkCache::get() {
  LogChunk *C = tryGet();
  // Never-fail contract: EdgeIn markers must land even when the pool is
  // refusing refills (the shed decision belongs to access logging only).
  return C != nullptr ? C : new LogChunk();
}
