//===- analysis/LogArena.cpp ----------------------------------------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/LogArena.h"

using namespace dc;
using namespace dc::analysis;

LogChunkPool::~LogChunkPool() {
  for (LogChunk *C = Free; C != nullptr;) {
    LogChunk *Next = C->Next;
    delete C;
    C = Next;
  }
}

LogChunk *LogChunkPool::popBatch(uint32_t Max) {
  LogChunk *Chain = nullptr;
  uint32_t Got = 0;
  {
    SpinLockGuard Guard(Lock);
    while (Got < Max && Free != nullptr) {
      LogChunk *C = Free;
      Free = C->Next;
      C->Next = Chain;
      Chain = C;
      ++Got;
    }
  }
  if (Got != 0)
    Reuses.fetch_add(Got, std::memory_order_relaxed);
  if (Got < Max) {
    Allocs.fetch_add(Max - Got, std::memory_order_relaxed);
    for (; Got < Max; ++Got) {
      LogChunk *C = new LogChunk();
      C->Next = Chain;
      Chain = C;
    }
  }
  return Chain;
}

void LogChunkPool::recycle(LogChunk *Head, LogChunk *Tail, uint64_t N) {
  if (Head == nullptr)
    return;
  (void)N;
  SpinLockGuard Guard(Lock);
  Tail->Next = Free;
  Free = Head;
}

LogChunkCache::~LogChunkCache() {
  for (LogChunk *C = Free; C != nullptr;) {
    LogChunk *Next = C->Next;
    delete C;
    C = Next;
  }
}

LogChunk *LogChunkCache::get() {
  if (Free == nullptr) {
    if (Pool == nullptr)
      return new LogChunk();
    Free = Pool->popBatch(RefillBatch);
    Count = RefillBatch;
  }
  LogChunk *C = Free;
  Free = C->Next;
  --Count;
  C->Next = nullptr;
  return C;
}
