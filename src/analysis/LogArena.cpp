//===- analysis/LogArena.cpp ----------------------------------------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/LogArena.h"

#include "analysis/Transaction.h"

using namespace dc;
using namespace dc::analysis;

LogChunkPool::~LogChunkPool() {
  for (LogChunk *C = Free; C != nullptr;) {
    LogChunk *Next = C->Next;
    delete C;
    C = Next;
  }
}

LogChunk *LogChunkPool::popBatch(uint32_t Max) {
  LogChunk *Chain = nullptr;
  uint32_t Got = 0;
  {
    SpinLockGuard Guard(Lock);
    while (Got < Max && Free != nullptr) {
      LogChunk *C = Free;
      Free = C->Next;
      C->Next = Chain;
      Chain = C;
      ++Got;
    }
  }
  if (Got != 0)
    Reuses.fetch_add(Got, std::memory_order_relaxed);
  if (Got < Max) {
    Allocs.fetch_add(Max - Got, std::memory_order_relaxed);
    for (; Got < Max; ++Got) {
      LogChunk *C = new LogChunk();
      C->Next = Chain;
      Chain = C;
    }
  }
  if (Gov != nullptr)
    Gov->logBytes(static_cast<int64_t>(Max) * sizeof(LogChunk));
  return Chain;
}

void LogChunkPool::recycle(LogChunk *Head, LogChunk *Tail, uint64_t N) {
  if (Head == nullptr)
    return;
  if (Gov != nullptr)
    Gov->logBytes(-static_cast<int64_t>(N) * sizeof(LogChunk));
  SpinLockGuard Guard(Lock);
  Tail->Next = Free;
  Free = Head;
}

bool LogChunkPool::admitRefill() {
  uint64_t N = RefillCalls.fetch_add(1, std::memory_order_relaxed) + 1;
  if (FailAt != 0 && N == FailAt) {
    Refusals.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (Gov != nullptr && (Gov->pressure() & PressureLogBytes) != 0) {
    Refusals.fetch_add(1, std::memory_order_relaxed);
    Gov->countBreach();
    return false;
  }
  return true;
}

LogChunkCache::~LogChunkCache() {
  // Cached chunks were charged to the governor's log-byte gauge when
  // popBatch handed them out; recycling them (rather than deleting) issues
  // the matching credit, so MaxLogBytes accounting balances across
  // transports — the same chunks otherwise stayed charged forever and
  // skewed every later pressure decision.
  if (Pool != nullptr && Free != nullptr) {
    LogChunk *Tail = Free;
    while (Tail->Next != nullptr)
      Tail = Tail->Next;
    Pool->recycle(Free, Tail, Count);
    Free = nullptr;
    Count = 0;
    return;
  }
  for (LogChunk *C = Free; C != nullptr;) {
    LogChunk *Next = C->Next;
    delete C;
    C = Next;
  }
}

LogChunk *LogChunkCache::tryGet() {
  if (Free == nullptr) {
    if (Pool == nullptr)
      return new LogChunk();
    if (!Pool->admitRefill())
      return nullptr;
    Free = Pool->popBatch(RefillBatch);
    Count = RefillBatch;
  }
  LogChunk *C = Free;
  Free = C->Next;
  --Count;
  C->Next = nullptr;
  return C;
}

LogChunk *LogChunkCache::get() {
  LogChunk *C = tryGet();
  // Never-fail contract: EdgeIn markers must land even when the pool is
  // refusing refills (the shed decision belongs to access logging only).
  return C != nullptr ? C : new LogChunk();
}

uint32_t RingLog::drainAllLocked() {
  uint32_t Total = 0;
  for (uint32_t R = 0; R < Rings.numRings(); ++R) {
    Total += Rings.drain(R, [&](RingRecord &Rec) {
      Transaction *Tx = Rec.Tx;
      if (!Tx->Log.writeAt(Rec.Pos, Rec.Slots, Rec.NumSlots, &DrainCache)) {
        // Chunk refused (budget breach / injected allocation failure):
        // shed the whole transaction instead of losing the record
        // silently — its SCCs degrade to Potential, which is sound.
        Tx->LogShed.store(true, std::memory_order_release);
        ShedRefusals.fetch_add(1, std::memory_order_relaxed);
        if (ShedHook)
          ShedHook(Tx);
      }
      // Count shed slots too: completeness waits must still terminate,
      // and a shed transaction's log is never replayed.
      Tx->DrainedSlots.fetch_add(Rec.NumSlots, std::memory_order_release);
    });
  }
  DrainPasses.fetch_add(1, std::memory_order_relaxed);
  if (Total != 0)
    RecordsDrained.fetch_add(Total, std::memory_order_relaxed);
  return Total;
}

uint32_t RingLog::drainAll() {
  SpinLockGuard Guard(DrainMu);
  return drainAllLocked();
}

bool RingLog::tryDrainAll(uint32_t &Drained) {
  if (!DrainMu.tryLock())
    return false;
  Drained = drainAllLocked();
  DrainMu.unlock();
  return true;
}
