//===- analysis/Pcd.cpp ---------------------------------------------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Pcd.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>

using namespace dc;
using namespace dc::analysis;

namespace {

/// One PDG edge with its creation index (for blame assignment).
struct PdgEdge {
  uint32_t To = 0;
  uint64_t Created = 0;
};

/// Replay and PDG state for one SCC.
class SccReplay {
public:
  SccReplay(const std::vector<Transaction *> &Members, ViolationLog &Sink,
            StatisticRegistry &Stats)
      : Members(Members), Sink(Sink), Stats(Stats) {}

  void run();

private:
  static uint64_t memberKey(uint32_t Tid, uint64_t Seq) {
    return (static_cast<uint64_t>(Tid) << 48) ^ Seq;
  }

  bool entryEnabled(const LogEntry &E) const;
  void processEntry(uint32_t Node, const LogEntry &E);
  void replayRead(uint32_t Node, rt::FieldAddr Addr);
  void replayWrite(uint32_t Node, rt::FieldAddr Addr);
  void addPdgEdge(uint32_t From, uint32_t To);
  void checkCycle(uint32_t From, uint32_t To);
  void reportCycle(const std::vector<uint32_t> &CycleNodes);

  const std::vector<Transaction *> &Members;
  ViolationLog &Sink;
  StatisticRegistry &Stats;

  /// (tid, SeqInThread) -> member node, for EdgeIn source lookups.
  std::unordered_map<uint64_t, uint32_t> MemberBySeq;
  /// SeqInThread of each thread's first not-fully-replayed member
  /// (~0ULL once the thread's queue drains).
  std::unordered_map<uint32_t, uint64_t> FrontSeq;
  std::vector<LogCursor> Cursors;    ///< Replay position per node.
  std::vector<bool> Activated;       ///< Intra PDG edge added on activation.
  std::vector<bool> Done;            ///< Fully replayed.
  /// Members sorted by EndTime; DonePrefix advances over the done prefix.
  /// An EdgeIn with stamp k is passable only once every member with
  /// EndTime < k is done (see LogEntry::Time).
  std::vector<uint32_t> ByEndTime;
  mutable size_t DonePrefix = 0;
  /// Most recently activated member per thread (intra PDG edge source).
  std::unordered_map<uint32_t, uint32_t> LastOfThread;

  // Figure 5 last-access state, per field.
  std::unordered_map<rt::FieldAddr, uint32_t> LastWrite;
  std::unordered_map<rt::FieldAddr, std::unordered_map<uint32_t, uint32_t>>
      LastReads; ///< field -> (tid -> node).

  std::vector<std::vector<PdgEdge>> PdgOut;
  /// Dedupe (From,To) pairs; the first creation index is kept for blame.
  std::unordered_map<uint64_t, uint64_t> PdgSeen;
  uint64_t NextCreation = 0;
  uint64_t Cycles = 0;
};

} // namespace

void SccReplay::run() {
  const uint32_t N = static_cast<uint32_t>(Members.size());
  MemberBySeq.reserve(N);
  for (uint32_t I = 0; I < N; ++I)
    MemberBySeq.emplace(memberKey(Members[I]->Tid, Members[I]->SeqInThread),
                        I);

  // Same-thread members replay in sequence order: per-thread worklists.
  std::unordered_map<uint32_t, std::vector<uint32_t>> ByThread;
  for (uint32_t I = 0; I < N; ++I)
    ByThread[Members[I]->Tid].push_back(I);
  for (auto &Entry : ByThread) {
    std::sort(Entry.second.begin(), Entry.second.end(),
              [&](uint32_t A, uint32_t B) {
                return Members[A]->SeqInThread < Members[B]->SeqInThread;
              });
    FrontSeq[Entry.first] = Members[Entry.second.front()]->SeqInThread;
  }

  Cursors.resize(N);
  for (uint32_t I = 0; I < N; ++I)
    Cursors[I] = LogCursor(*Members[I]);
  Activated.assign(N, false);
  Done.assign(N, false);
  PdgOut.assign(N, {});
  ByEndTime.resize(N);
  for (uint32_t I = 0; I < N; ++I)
    ByEndTime[I] = I;
  std::sort(ByEndTime.begin(), ByEndTime.end(), [&](uint32_t A, uint32_t B) {
    return Members[A]->EndTime < Members[B]->EndTime;
  });

  // Round-robin over threads, advancing each thread's first unfinished
  // member while its next entry is enabled. A full pass with no progress
  // on an unfinished replay would indicate inconsistent logs.
  uint64_t Entries = 0;
  bool Progress = true;
  bool AllDone = false;
  while (Progress && !AllDone) {
    Progress = false;
    AllDone = true;
    for (auto &ThreadEntry : ByThread) {
      std::vector<uint32_t> &Queue = ThreadEntry.second;
      while (!Queue.empty()) {
        uint32_t Node = Queue.front();
        Transaction *Tx = Members[Node];
        if (!Activated[Node]) {
          Activated[Node] = true;
          // Intra-thread PDG edge from the previous same-thread member.
          // (Consecutive same-thread members of an SCC are contiguous.)
          if (LastOfThread.count(Tx->Tid))
            addPdgEdge(LastOfThread[Tx->Tid], Node);
          LastOfThread[Tx->Tid] = Node;
          Progress = true;
        }
        if (Cursors[Node].atEnd()) {
          Done[Node] = true;
          Queue.erase(Queue.begin());
          FrontSeq[Tx->Tid] =
              Queue.empty() ? ~0ULL
                            : Members[Queue.front()]->SeqInThread;
          Progress = true;
          continue;
        }
        const LogEntry E = Cursors[Node].current();
        if (!entryEnabled(E))
          break; // This thread is stalled on a cross-thread constraint.
        Cursors[Node].advance();
        ++Entries;
        processEntry(Node, E);
        Progress = true;
      }
      if (!Queue.empty())
        AllDone = false;
    }
  }
  if (!AllDone)
    Stats.get("pcd.replay_stuck").add(1);

  if (Cycles > 0 && std::getenv("DC_PCD_DEBUG") != nullptr) {
    std::fprintf(stderr, "=== SCC with %llu cycle(s), %u members ===\n",
                 (unsigned long long)Cycles, N);
    for (uint32_t I = 0; I < N; ++I) {
      const Transaction *Tx = Members[I];
      std::fprintf(stderr, "node %u: tx#%llu t%u seq%llu %s site%d\n", I,
                   (unsigned long long)Tx->Id, Tx->Tid,
                   (unsigned long long)Tx->SeqInThread,
                   Tx->Regular ? "regular" : "unary", (int)Tx->Site);
      for (LogCursor C(*Tx); !C.atEnd(); C.advance()) {
        const LogEntry E = C.current();
        if (E.K == LogEntry::Kind::EdgeIn)
          std::fprintf(stderr, "  [%u] edgein srcT%u srcSeq%llu srcPos%u\n",
                       C.pos(), E.Obj, (unsigned long long)E.SrcSeq, E.Addr);
        else
          std::fprintf(stderr, "  [%u] %s obj%u addr%u\n", C.pos(),
                       E.K == LogEntry::Kind::Write ? "wr" : "rd", E.Obj,
                       E.Addr);
      }
    }
  }

  Stats.get("pcd.txs_replayed").add(N);
  Stats.get("pcd.entries_replayed").add(Entries);
  Stats.get("pcd.cycles").add(Cycles);
}

bool SccReplay::entryEnabled(const LogEntry &E) const {
  if (E.K != LogEntry::Kind::EdgeIn)
    return true;
  // EdgeIn payload: Obj = source tid, Addr = source position, SrcSeq =
  // source SeqInThread, Time = global order stamp. The sink may pass the
  // marker only once
  //  (a) every member that ENDED before the edge was created has fully
  //      replayed — this carries orderings whose happens-before chain runs
  //      through transactions outside the SCC (the real execution's global
  //      order makes these constraints trivially satisfiable), and
  //  (b) every member of the source's thread preceding the source is done,
  //      and the source itself (if a member) has passed SrcPos.
  while (DonePrefix < ByEndTime.size() && Done[ByEndTime[DonePrefix]])
    ++DonePrefix;
  if (DonePrefix < ByEndTime.size() &&
      Members[ByEndTime[DonePrefix]]->EndTime < E.Time)
    return false;
  auto FIt = FrontSeq.find(static_cast<uint32_t>(E.Obj));
  if (FIt != FrontSeq.end() && FIt->second < E.SrcSeq)
    return false;
  auto It = MemberBySeq.find(memberKey(E.Obj, E.SrcSeq));
  if (It != MemberBySeq.end())
    return Cursors[It->second].pos() >= E.Addr;
  return true;
}

void SccReplay::processEntry(uint32_t Node, const LogEntry &E) {
  switch (E.K) {
  case LogEntry::Kind::Read:
    replayRead(Node, E.Addr);
    break;
  case LogEntry::Kind::Write:
    replayWrite(Node, E.Addr);
    break;
  case LogEntry::Kind::EdgeIn:
    break; // Ordering only.
  }
}

void SccReplay::replayRead(uint32_t Node, rt::FieldAddr Addr) {
  auto It = LastWrite.find(Addr);
  if (It != LastWrite.end() &&
      Members[It->second]->Tid != Members[Node]->Tid)
    addPdgEdge(It->second, Node); // Write-read dependence.
  LastReads[Addr][Members[Node]->Tid] = Node;
}

void SccReplay::replayWrite(uint32_t Node, rt::FieldAddr Addr) {
  auto It = LastWrite.find(Addr);
  if (It != LastWrite.end() &&
      Members[It->second]->Tid != Members[Node]->Tid)
    addPdgEdge(It->second, Node); // Write-write dependence.
  auto RIt = LastReads.find(Addr);
  if (RIt != LastReads.end()) {
    for (const auto &Reader : RIt->second)
      if (Reader.first != Members[Node]->Tid)
        addPdgEdge(Reader.second, Node); // Read-write dependence.
    RIt->second.clear(); // Figure 5: a write clears all last-readers.
  }
  LastWrite[Addr] = Node;
}

void SccReplay::addPdgEdge(uint32_t From, uint32_t To) {
  if (From == To)
    return; // Same transaction; not a cross-transaction dependence.
  uint64_t Key = (static_cast<uint64_t>(From) << 32) | To;
  if (PdgSeen.count(Key))
    return;
  PdgSeen.emplace(Key, NextCreation);
  PdgOut[From].push_back(PdgEdge{To, NextCreation});
  ++NextCreation;
  Stats.get("pcd.pdg_edges").add(1);
  if (Members[From]->Tid != Members[To]->Tid)
    checkCycle(From, To);
}

void SccReplay::checkCycle(uint32_t From, uint32_t To) {
  // Adding From->To creates a cycle iff To already reaches From. DFS with
  // parent links to reconstruct the path.
  std::vector<int64_t> Parent(Members.size(), -1);
  std::vector<uint32_t> Stack{To};
  Parent[To] = To;
  bool Found = false;
  while (!Stack.empty() && !Found) {
    uint32_t Cur = Stack.back();
    Stack.pop_back();
    for (const PdgEdge &E : PdgOut[Cur]) {
      if (Parent[E.To] != -1)
        continue;
      Parent[E.To] = Cur;
      if (E.To == From) {
        Found = true;
        break;
      }
      Stack.push_back(E.To);
    }
  }
  if (!Found)
    return;

  if (std::getenv("DC_PCD_DEBUG") != nullptr) {
    std::fprintf(stderr,
                 "cycle closed by PDG edge node%u(tx#%llu t%u seq%llu) -> "
                 "node%u(tx#%llu t%u seq%llu)\n",
                 From, (unsigned long long)Members[From]->Id,
                 Members[From]->Tid,
                 (unsigned long long)Members[From]->SeqInThread, To,
                 (unsigned long long)Members[To]->Id,
                 Members[To]->Tid,
                 (unsigned long long)Members[To]->SeqInThread);
  }

  // Cycle node order: To -> ... -> From (-> To via the new edge).
  std::vector<uint32_t> Cycle;
  for (uint32_t Cur = From;; Cur = static_cast<uint32_t>(Parent[Cur])) {
    Cycle.push_back(Cur);
    if (Cur == To)
      break;
  }
  std::reverse(Cycle.begin(), Cycle.end()); // Now To, ..., From.
  ++Cycles;
  reportCycle(Cycle);
}

void SccReplay::reportCycle(const std::vector<uint32_t> &CycleNodes) {
  // Edge creation index between consecutive cycle nodes.
  auto CreationOf = [&](uint32_t From, uint32_t To) {
    auto It = PdgSeen.find((static_cast<uint64_t>(From) << 32) | To);
    assert(It != PdgSeen.end() && "cycle uses a nonexistent edge");
    return It->second;
  };

  // Blame: a transaction whose outgoing cycle edge was created earlier
  // than its incoming one completed the cycle. Prefer regular
  // transactions; fall back to any regular member.
  const size_t N = CycleNodes.size();
  ir::MethodId Blamed = ir::InvalidMethodId;
  for (size_t I = 0; I < N; ++I) {
    uint32_t Prev = CycleNodes[(I + N - 1) % N];
    uint32_t Cur = CycleNodes[I];
    uint32_t Next = CycleNodes[(I + 1) % N];
    const Transaction *Tx = Members[Cur];
    if (!Tx->Regular)
      continue;
    if (CreationOf(Cur, Next) < CreationOf(Prev, Cur)) {
      Blamed = Tx->Site;
      break;
    }
  }
  if (Blamed == ir::InvalidMethodId) {
    for (uint32_t Node : CycleNodes) {
      if (Members[Node]->Regular) {
        Blamed = Members[Node]->Site;
        break;
      }
    }
  }

  ViolationRecord R;
  R.Blamed = Blamed;
  R.Cycle.reserve(N);
  for (uint32_t Node : CycleNodes) {
    const Transaction *Tx = Members[Node];
    R.Cycle.push_back(CycleMember{Tx->Tid, Tx->Site, Tx->Id});
  }
  Sink.report(std::move(R));
}

void PreciseCycleDetector::processScc(
    const std::vector<Transaction *> &Members) {
  Stats.get("pcd.sccs_processed").add(1);
  if (Members.size() > Opts.MaxSccTxs) {
    // Sound degradation, not a silent skip: every true PDG cycle in this
    // SCC runs through its members, so reporting their static sites as
    // potential violations (multi-run run 1 semantics) over-approximates
    // but never misses (DESIGN.md §10).
    Stats.get("pcd.sccs_skipped").add(1);
    reportPotential(Members);
    return;
  }
  SccReplay Replay(Members, Sink, Stats);
  Replay.run();
}

void PreciseCycleDetector::reportPotential(
    const std::vector<Transaction *> &Members) {
  Stats.get("pcd.sccs_degraded").add(1);
  ViolationRecord R;
  R.K = ViolationRecord::Kind::Potential;
  R.Cycle.reserve(Members.size());
  for (const Transaction *Tx : Members)
    R.Cycle.push_back(CycleMember{Tx->Tid, Tx->Site, Tx->Id});
  Sink.report(std::move(R));
}
