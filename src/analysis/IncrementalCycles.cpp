//===- analysis/IncrementalCycles.cpp - Online IDG cycle detection --------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/IncrementalCycles.h"

#include <algorithm>
#include <cassert>
#include <chrono>

namespace dc {
namespace analysis {

namespace {
/// Fast-path attempts before giving up and classifying under Mu. A retry
/// only happens while a reorder is in flight, so the cap is a liveness
/// backstop, not a tuning knob: under a reorder storm the slow path is the
/// correct place to wait anyway (the region being permuted probably
/// involves our endpoints).
constexpr unsigned FastPathRetryCap = 8;
} // namespace

IncrementalCycleDetector::~IncrementalCycleDetector() {
  for (IcdGroup *G : Groups)
    delete G;
  for (IcdGroup *G : Graveyard)
    delete G;
  IcdEdgeNode *N = AllNodes.load(std::memory_order_acquire);
  while (N != nullptr) {
    IcdEdgeNode *Next = N->NextAll;
    delete N;
    N = Next;
  }
}

void IncrementalCycleDetector::lockMu() {
  if (Mu.tryLock())
    return;
  const auto Start = std::chrono::steady_clock::now();
  Mu.lock();
  const auto Waited = std::chrono::steady_clock::now() - Start;
  // Charge only after the lock is held, nanoseconds before count; the
  // flush side drains count before nanoseconds. A flush racing a charge
  // can therefore never observe a wait whose nanoseconds have not landed —
  // at worst a wait's nanoseconds slip into the *next* flush, so the pair
  // is momentarily over on ns, never torn under.
  LockWaitNs.fetch_add(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Waited).count(),
      std::memory_order_relaxed);
  LockWaits.fetch_add(1, std::memory_order_relaxed);
}

void IncrementalCycleDetector::addNode(Transaction *Tx) {
  // Lock-free: new nodes are maximal (no edge can point at a transaction
  // that does not exist yet), and a relaxed fetch-add keeps the key above
  // everything a concurrent reorder could be permuting. The key reaches
  // other threads through the stripe hand-off that publishes Tx itself.
  Tx->IcdOrd.store(NextOrd.fetch_add(1, std::memory_order_relaxed),
                   std::memory_order_relaxed);
}

void IncrementalCycleDetector::addChainEdge(Transaction *Prev,
                                            Transaction *Tx) {
  if (Prev == nullptr || Tx == nullptr || Prev == Tx)
    return;
  // Tx's key is fresh and maximal, so ord(Prev) < ord(Tx) holds no matter
  // what any concurrent reorder permutes — the edge is consistent by
  // construction and needs no lock at all. The release store (paired with
  // the searches' acquire loads) publishes Tx's key with the link.
  Tx->IcdChainPrev.store(Prev, std::memory_order_relaxed);
  Prev->IcdChainNext.store(Tx, std::memory_order_release);
  ChainEdges.fetch_add(1, std::memory_order_relaxed);
}

IcdEdgeNode *IncrementalCycleDetector::allocNode() {
  // Recycle if the free list is uncontended; a contended tryLock just
  // allocates, so the fast path never blocks here. Pops and pushes are
  // both under FreeMu, so there is no lock-free-pop ABA window.
  if (FreeMu.tryLock()) {
    IcdEdgeNode *N = FreeList;
    if (N != nullptr)
      FreeList = N->NextFree;
    FreeMu.unlock();
    if (N != nullptr) {
      N->Next = nullptr;
      N->NextFree = nullptr;
      return N;
    }
  }
  IcdEdgeNode *N = new IcdEdgeNode;
  // Thread every allocation on the ownership chain the destructor sweeps.
  IcdEdgeNode *Head = AllNodes.load(std::memory_order_relaxed);
  do {
    N->NextAll = Head;
  } while (!AllNodes.compare_exchange_weak(Head, N, std::memory_order_release,
                                           std::memory_order_relaxed));
  return N;
}

void IncrementalCycleDetector::publishEdge(Transaction *Src,
                                           Transaction *Dst) {
  // Two cells per logical edge, each published with a release CAS so an
  // acquire head load (searches under Mu, the duplicate check) sees the
  // cell's Peer/Next fully written. C++ release sequences continue through
  // the RMWs of later pushers, so one acquire load of the head
  // synchronizes with every push before it.
  IcdEdgeNode *OutN = allocNode();
  OutN->Peer = Dst;
  IcdEdgeNode *Head = Src->IcdOutHead.load(std::memory_order_relaxed);
  do {
    OutN->Next = Head;
  } while (!Src->IcdOutHead.compare_exchange_weak(
      Head, OutN, std::memory_order_release, std::memory_order_relaxed));
  IcdEdgeNode *InN = allocNode();
  InN->Peer = Src;
  Head = Dst->IcdInHead.load(std::memory_order_relaxed);
  do {
    InN->Next = Head;
  } while (!Dst->IcdInHead.compare_exchange_weak(
      Head, InN, std::memory_order_release, std::memory_order_relaxed));
}

void IncrementalCycleDetector::registerGroup(IcdGroup *G) {
  G->RegIdx = Groups.size();
  Groups.push_back(G);
}

void IncrementalCycleDetector::unregisterGroup(IcdGroup *G) {
  const size_t I = G->RegIdx;
  Groups[I] = Groups.back();
  Groups[I]->RegIdx = I;
  Groups.pop_back();
}

void IncrementalCycleDetector::buryGroup(IcdGroup *G) {
  // A fast-path reader may still hold this pointer from a snapshot that
  // is about to fail seqlock validation — it must stay dereferenceable
  // until no thread can be inside addEdge, which is exactly when the
  // collector holds every stripe (removeNodes) or at destruction.
  unregisterGroup(G);
  Graveyard.push_back(G);
}

void IncrementalCycleDetector::claimGroup(IcdGroup *G, ClaimList &Out) {
  G->Claimed = true;
  for (Transaction *M : G->Members)
    M->Pins.fetch_add(1, std::memory_order_relaxed);
  Claim C;
  C.Members = G->Members;
  Out.push_back(std::move(C));
}

void IncrementalCycleDetector::addEdge(Transaction *Src, Transaction *Dst,
                                       ClaimList &Out) {
  if (Src == nullptr || Dst == nullptr || Src == Dst)
    return;
  EdgesObserved.fetch_add(1, std::memory_order_relaxed);
  if (!Opts.LockedFastPath) {
    // Lock-free fast path: snapshot both endpoints' group/key state under
    // the reorder seqlock, and if the edge is order-consistent publish the
    // adjacency cells and revalidate. Only a snapshot that raced an actual
    // reorder falls through to Mu. DESIGN.md §12 has the linearization
    // argument for why a validated fast edge is observed by every later
    // reorder or cycle check.
    uint32_t Storm = Opts.RetryStorm;
    for (unsigned Attempt = 0; Attempt < FastPathRetryCap; ++Attempt) {
      const uint64_t E = Seq.readBegin();
      if (Storm > 0) {
        // Deterministic validation failure for tests/fault sweeps.
        --Storm;
        SeqRetries.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      IcdGroup *GS = Src->IcdG.load(std::memory_order_acquire);
      IcdGroup *GD = Dst->IcdG.load(std::memory_order_acquire);
      const bool Same = GS != nullptr && GS == GD;
      const bool Poisoned =
          (GS != nullptr && GS->Oversized) || (GD != nullptr && GD->Oversized);
      const uint64_t KS = GS != nullptr
                              ? GS->Ord.load(std::memory_order_relaxed)
                              : Src->IcdOrd.load(std::memory_order_relaxed);
      const uint64_t KD = GD != nullptr
                              ? GD->Ord.load(std::memory_order_relaxed)
                              : Dst->IcdOrd.load(std::memory_order_relaxed);
      if (Seq.readRetry(E)) {
        SeqRetries.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      // The snapshot was stable at epoch E.
      if (Same)
        return; // Internal to a merged component: not recorded (see the
                // slow path's rationale), and a later merge racing this
                // conclusion can only have *added* the same-group fact.
      if (Poisoned || KS >= KD)
        break; // Needs absorption or a reorder: classify under Mu.
      if (headIsDuplicate(Src, Dst)) {
        // Consecutive duplicate (one transaction pair conflicting on many
        // variables): the existing cell already carries the edge, so the
        // order invariant is already upheld — nothing to publish.
        LfFast.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      publishEdge(Src, Dst);
      if (!Seq.readRetry(E)) {
        // No reorder overlapped [snapshot, publication]: the edge was
        // consistent when published and every later writer section will
        // observe the cells (fence argument, DESIGN.md §12). Done — the
        // hot path never touched Mu.
        LfFast.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      // A reorder raced the publication. The cells are in the chains
      // (possibly already seen by the writer's search); only the
      // *classification* is stale. Reconcile under Mu without
      // re-publishing.
      SeqRetries.fetch_add(1, std::memory_order_relaxed);
      addEdgeSlow(Src, Dst, Out, /*Publish=*/false);
      return;
    }
  }
  addEdgeSlow(Src, Dst, Out, /*Publish=*/true);
}

void IncrementalCycleDetector::addEdgeSlow(Transaction *Src, Transaction *Dst,
                                           ClaimList &Out, bool Publish) {
  TimedGuard L(*this);
  if (sameVertex(Src, Dst))
    return; // Internal to an already-merged component: changes neither
            // reachability (searches expand whole groups) nor order, so
            // it is not even recorded — hot ping-pong pairs would
            // otherwise grow the merged component's adjacency forever. A
            // cell a racing fast path already published is harmless for
            // the same reason.
  // Detector-private symmetric adjacency. Consecutive duplicates collapse:
  // repeated conflicts between one transaction pair are the common case,
  // and a duplicate edge changes neither reachability nor order. Published
  // before the oversized checks so absorption closures cross the new edge.
  if (Publish && !headIsDuplicate(Src, Dst))
    publishEdge(Src, Dst);
  IcdGroup *GS = groupOf(Src);
  IcdGroup *GD = groupOf(Dst);
  if (GS != nullptr && GS->Oversized) {
    SeqWriteGuard W(Seq);
    absorbInto(GS, {Dst}, Out);
    return;
  }
  if (GD != nullptr && GD->Oversized) {
    SeqWriteGuard W(Seq);
    absorbInto(GD, {Src}, Out);
    return;
  }
  if (ordOf(Src) < ordOf(Dst)) {
    ++NumFastEdges; // Order already consistent (fast path disabled, raced,
                    // or capped out): no traversal.
    return;
  }
  SeqWriteGuard W(Seq);
  insertInconsistent(Src, Dst, Out);
}

void IncrementalCycleDetector::insertInconsistent(Transaction *Src,
                                                  Transaction *Dst,
                                                  ClaimList &Out) {
  const uint64_t HiOrd = ordOf(Src);
  const uint64_t LoOrd = ordOf(Dst);
  const uint64_t FStamp = ++VisitClock;
  const uint64_t BStamp = ++VisitClock;

  // Forward search from Dst over vertices with keys ≤ ord(Src). Visits are
  // per condensation vertex (a group shares one stamp and one order key).
  std::vector<Transaction *> VF;    // Forward-visited (members included).
  std::vector<Transaction *> BOnly; // Backward-only.
  std::vector<Transaction *> MemberV; // F∩B: the new component's vertices.
  std::vector<Transaction *> Stack;

  bool Oversize = false;
  IcdGroup *Poison = nullptr; // Oversized group a search touched.
  stampOf(Dst) = FStamp;
  VF.push_back(Dst);
  Stack.push_back(Dst);
  while (!Stack.empty() && Poison == nullptr) {
    if (VF.size() > Opts.MaxRegion) {
      Oversize = true;
      break;
    }
    Transaction *V = Stack.back();
    Stack.pop_back();
    auto Visit = [&](Transaction *N) {
      if (N == nullptr || stampOf(N) == FStamp)
        return;
      IcdGroup *GN = groupOf(N);
      if (GN != nullptr && GN->Oversized) {
        // Lazy poison contact (a chain link published after the region
        // was absorbed): abandon the search and absorb the new edge.
        Poison = GN;
        return;
      }
      if (ordOf(N) > HiOrd)
        return;
      stampOf(N) = FStamp;
      VF.push_back(N);
      Stack.push_back(N);
    };
    auto Expand = [&](Transaction *M) {
      for (IcdEdgeNode *C = M->IcdOutHead.load(std::memory_order_acquire);
           C != nullptr; C = C->Next)
        Visit(C->Peer);
      Visit(M->IcdChainNext.load(std::memory_order_acquire));
    };
    if (IcdGroup *GV = groupOf(V))
      for (Transaction *M : GV->Members)
        Expand(M);
    else
      Expand(V);
  }

  // Backward search from Src over keys ≥ ord(Dst). A vertex already
  // carrying the forward stamp is in both frontiers — i.e. on the cycle
  // the new edge closes.
  if (!Oversize && Poison == nullptr) {
    Stack.clear();
    auto VisitB = [&](Transaction *N) {
      const bool WasF = stampOf(N) == FStamp;
      stampOf(N) = BStamp;
      (WasF ? MemberV : BOnly).push_back(N);
      Stack.push_back(N);
    };
    VisitB(Src);
    while (!Stack.empty() && Poison == nullptr) {
      if (VF.size() + BOnly.size() > Opts.MaxRegion) {
        Oversize = true;
        break;
      }
      Transaction *V = Stack.back();
      Stack.pop_back();
      auto Visit = [&](Transaction *N) {
        if (N == nullptr || stampOf(N) == BStamp)
          return;
        IcdGroup *GN = groupOf(N);
        if (GN != nullptr && GN->Oversized) {
          Poison = GN;
          return;
        }
        if (ordOf(N) < LoOrd)
          return;
        VisitB(N);
      };
      auto Expand = [&](Transaction *M) {
        for (IcdEdgeNode *C = M->IcdInHead.load(std::memory_order_acquire);
             C != nullptr; C = C->Next)
          Visit(C->Peer);
        Visit(M->IcdChainPrev.load(std::memory_order_acquire));
      };
      if (IcdGroup *GV = groupOf(V))
        for (Transaction *M : GV->Members)
          Expand(M);
      else
        Expand(V);
    }
  }

  if (Poison != nullptr) {
    // Touching a poisoned region means the new edge connects to it:
    // absorb both endpoints (and their undirected closure) instead of
    // reordering. The stamps left behind are epoch-based garbage.
    absorbInto(Poison, {Src, Dst}, Out);
    return;
  }

  const size_t Region = VF.size() + BOnly.size();
  RegionMax = std::max<uint64_t>(RegionMax, Region);

  if (Oversize) {
    // The region is too dense to keep reordering: poison it. Everything
    // connected (in the undirected sense) to the new edge collapses into
    // one oversized group whose members are reported as Potential; the
    // stamps left behind are epoch-based and need no cleanup.
    IcdGroup *G = new IcdGroup;
    G->Oversized = true;
    G->Claimed = true;
    // Never consulted: searches skip oversized groups.
    G->Ord.store(HiOrd, std::memory_order_relaxed);
    registerGroup(G);
    absorbInto(G, {Src, Dst}, Out);
    return;
  }

  ++NumReorders;
  ReorderVisited += Region;
  if (ReorderHook)
    ReorderHook(Region);

  // Restore order consistency by permuting the region's own keys:
  // backward frontier gets the lowest keys, the merged component the next
  // one, the forward frontier the highest. Relative order within each
  // block is preserved, so every edge into, out of, or across the region
  // stays consistent (see the proof sketch in DESIGN.md §12).
  std::vector<uint64_t> Pool;
  Pool.reserve(Region);
  for (Transaction *V : VF)
    Pool.push_back(ordOf(V));
  for (Transaction *V : BOnly)
    Pool.push_back(ordOf(V));
  std::sort(Pool.begin(), Pool.end());

  const auto ByOrd = [this](Transaction *A, Transaction *B) {
    return ordOf(A) < ordOf(B);
  };
  std::sort(BOnly.begin(), BOnly.end(), ByOrd);
  std::vector<Transaction *> FOnly; // VF minus members: stamp still FStamp
  for (Transaction *V : VF)        // (members were restamped BStamp).
    if (stampOf(V) == FStamp)
      FOnly.push_back(V);
  std::sort(FOnly.begin(), FOnly.end(), ByOrd);

  size_t Slot = 0;
  for (Transaction *V : BOnly)
    setOrd(V, Pool[Slot++]);

  if (!MemberV.empty()) {
    // The edge closed a cycle: merge F∩B into one condensation vertex.
    IcdGroup *G = new IcdGroup;
    for (Transaction *V : MemberV) {
      if (IcdGroup *Old = groupOf(V)) {
        for (Transaction *M : Old->Members) {
          M->IcdG.store(G, std::memory_order_release);
          G->Members.push_back(M);
        }
        buryGroup(Old);
      } else {
        V->IcdG.store(G, std::memory_order_release);
        G->Members.push_back(V);
      }
    }
    for (Transaction *M : G->Members)
      if (!M->IcdRetired)
        ++G->Unretired;
    // Between the backward and forward blocks.
    G->Ord.store(Pool[Slot], std::memory_order_relaxed);
    G->Epoch = BStamp;
    registerGroup(G);
    ++NumCycles;
    // The runtime's edges always target an unfinished (hence unretired)
    // transaction, so the claim waits for retire(); hand-built graphs may
    // close a cycle among finished nodes, in which case claim here.
    if (G->Unretired == 0)
      claimGroup(G, Out);
  }

  Slot = Pool.size() - FOnly.size();
  for (Transaction *V : FOnly)
    setOrd(V, Pool[Slot++]);
}

void IncrementalCycleDetector::absorbInto(
    IcdGroup *G, const std::vector<Transaction *> &Seeds, ClaimList &Out) {
  assert(G->Oversized && "absorption is the oversized-region valve");
  // Fresh doubles as the BFS worklist and the claim's member list: the
  // undirected closure of the seeds, minus what the group already holds.
  std::vector<Transaction *> Fresh;
  auto Absorb = [&](Transaction *N) {
    if (groupOf(N) == G)
      return;
    if (IcdGroup *Old = groupOf(N)) {
      // Members of another *oversized* group were already reported (and
      // pinned) when that group absorbed them: splice them in silently.
      const bool Report = !Old->Oversized;
      for (Transaction *M : Old->Members) {
        M->IcdG.store(G, std::memory_order_release);
        G->Members.push_back(M);
        if (Report)
          Fresh.push_back(M);
      }
      buryGroup(Old);
    } else {
      N->IcdG.store(G, std::memory_order_release);
      G->Members.push_back(N);
      Fresh.push_back(N);
    }
  };
  for (Transaction *S : Seeds)
    Absorb(S);
  for (size_t I = 0; I < Fresh.size(); ++I) {
    Transaction *M = Fresh[I];
    for (IcdEdgeNode *C = M->IcdOutHead.load(std::memory_order_acquire);
         C != nullptr; C = C->Next)
      Absorb(C->Peer);
    for (IcdEdgeNode *C = M->IcdInHead.load(std::memory_order_acquire);
         C != nullptr; C = C->Next)
      Absorb(C->Peer);
    if (Transaction *N = M->IcdChainNext.load(std::memory_order_acquire))
      Absorb(N);
    if (Transaction *N = M->IcdChainPrev.load(std::memory_order_acquire))
      Absorb(N);
  }
  if (Fresh.empty())
    return;
  ++CapDegrades;
  for (Transaction *M : Fresh)
    M->Pins.fetch_add(1, std::memory_order_relaxed);
  Claim C;
  C.Members = std::move(Fresh);
  C.Oversized = true;
  Out.push_back(std::move(C));
}

void IncrementalCycleDetector::retire(Transaction *Tx, ClaimList &Out) {
  TimedGuard L(*this);
  if (Tx->IcdRetired)
    return;
  Tx->IcdRetired = true;
  IcdGroup *G = groupOf(Tx);
  if (G != nullptr && !G->Claimed && G->Unretired > 0 &&
      --G->Unretired == 0)
    claimGroup(G, Out); // Last member to finish claims the component —
                        // the same instant a batched pass first could.
}

void IncrementalCycleDetector::removeNodes(
    const std::vector<Transaction *> &Doomed) {
  TimedGuard L(*this);
  // All stripes are held (collectNow), so no thread is inside addEdge —
  // no seqlock writer mode needed, no fast-path snapshot can be live, and
  // the deferred reclamation below is safe.
  std::vector<IcdEdgeNode *> Recycled;
  // Removes every cell whose Peer is Tx from the chain at Head,
  // preserving the order of the survivors.
  const auto PurgeChain = [&Recycled](std::atomic<IcdEdgeNode *> &Head,
                                      Transaction *Tx) {
    IcdEdgeNode *Cur = Head.load(std::memory_order_relaxed);
    IcdEdgeNode *Kept = nullptr;
    IcdEdgeNode **Tail = &Kept;
    while (Cur != nullptr) {
      IcdEdgeNode *Next = Cur->Next;
      if (Cur->Peer == Tx) {
        Recycled.push_back(Cur);
      } else {
        *Tail = Cur;
        Tail = &Cur->Next;
      }
      Cur = Next;
    }
    *Tail = nullptr;
    Head.store(Kept, std::memory_order_relaxed);
  };
  for (Transaction *Tx : Doomed) {
    for (IcdEdgeNode *C = Tx->IcdOutHead.load(std::memory_order_relaxed);
         C != nullptr; C = C->Next)
      if (C->Peer != Tx)
        PurgeChain(C->Peer->IcdInHead, Tx);
    for (IcdEdgeNode *C = Tx->IcdInHead.load(std::memory_order_relaxed);
         C != nullptr; C = C->Next)
      if (C->Peer != Tx)
        PurgeChain(C->Peer->IcdOutHead, Tx);
    for (IcdEdgeNode *C = Tx->IcdOutHead.load(std::memory_order_relaxed);
         C != nullptr;) {
      IcdEdgeNode *Next = C->Next;
      Recycled.push_back(C);
      C = Next;
    }
    for (IcdEdgeNode *C = Tx->IcdInHead.load(std::memory_order_relaxed);
         C != nullptr;) {
      IcdEdgeNode *Next = C->Next;
      Recycled.push_back(C);
      C = Next;
    }
    Tx->IcdOutHead.store(nullptr, std::memory_order_relaxed);
    Tx->IcdInHead.store(nullptr, std::memory_order_relaxed);
    // Chain unlink. In the runtime a doomed node's chain neighbours are
    // doomed with it (the mark phase follows the same edges), so this is
    // defensive, like the purges above.
    if (Transaction *N = Tx->IcdChainPrev.load(std::memory_order_relaxed))
      if (N->IcdChainNext.load(std::memory_order_relaxed) == Tx)
        N->IcdChainNext.store(nullptr, std::memory_order_relaxed);
    if (Transaction *N = Tx->IcdChainNext.load(std::memory_order_relaxed))
      if (N->IcdChainPrev.load(std::memory_order_relaxed) == Tx)
        N->IcdChainPrev.store(nullptr, std::memory_order_relaxed);
    Tx->IcdChainNext.store(nullptr, std::memory_order_relaxed);
    Tx->IcdChainPrev.store(nullptr, std::memory_order_relaxed);
    if (IcdGroup *G = groupOf(Tx)) {
      // Only claimed (processed or poisoned) groups can lose members: an
      // unclaimed group has an unretired member rooting the whole
      // component through the mark phase.
      G->Members.erase(
          std::remove(G->Members.begin(), G->Members.end(), Tx),
          G->Members.end());
      if (!Tx->IcdRetired && G->Unretired > 0)
        --G->Unretired;
      Tx->IcdG.store(nullptr, std::memory_order_relaxed);
      if (G->Members.empty())
        buryGroup(G);
    }
  }
  // Safe reclamation point (see above): drain the graveyard and return
  // the purged cells to the free list so streaming runs keep RSS bounded.
  for (IcdGroup *G : Graveyard)
    delete G;
  Graveyard.clear();
  if (!Recycled.empty()) {
    SpinLockGuard F(FreeMu);
    for (IcdEdgeNode *N : Recycled) {
      N->Peer = nullptr;
      N->Next = nullptr;
      N->NextFree = FreeList;
      FreeList = N;
    }
  }
}

void IncrementalCycleDetector::finalize(ClaimList &Out) {
  TimedGuard L(*this);
  for (size_t I = 0; I < Groups.size(); ++I) {
    IcdGroup *G = Groups[I];
    if (!G->Claimed) {
      ++FinalizeClaims;
      claimGroup(G, Out);
    }
  }
}

void IncrementalCycleDetector::flushStats(StatisticRegistry &Stats) {
  TimedGuard L(*this);
  // Chain links are the ultimate fast path: consistent by construction.
  const uint64_t Chain = ChainEdges.exchange(0, std::memory_order_relaxed);
  const uint64_t Lf = LfFast.exchange(0, std::memory_order_relaxed);
  const uint64_t Edges = EdgesObserved.exchange(0, std::memory_order_relaxed);
  Stats.get("icd.inc_edges").add(Edges + Chain);
  Stats.get("icd.inc_fast_edges").add(NumFastEdges + Lf + Chain);
  Stats.get("icd.fastpath_lockfree").add(Lf);
  Stats.get("icd.seqlock_retries")
      .add(SeqRetries.exchange(0, std::memory_order_relaxed));
  Stats.get("icd.reorders").add(NumReorders);
  Stats.get("icd.reorder_visited").add(ReorderVisited);
  Stats.get("icd.region_max").updateMax(RegionMax);
  Stats.get("icd.cycles_incremental").add(NumCycles);
  Stats.get("icd.region_cap_degrades").add(CapDegrades);
  Stats.get("icd.finalize_claims").add(FinalizeClaims);
  // Count before nanoseconds — the charge side adds nanoseconds before
  // count (lockMu), so this order can never drain a wait without its time.
  Stats.get("icd.lock_waits")
      .add(LockWaits.exchange(0, std::memory_order_relaxed));
  Stats.get("icd.lock_wait_ns")
      .add(LockWaitNs.exchange(0, std::memory_order_relaxed));
  NumFastEdges = NumReorders = ReorderVisited = 0;
  RegionMax = NumCycles = CapDegrades = FinalizeClaims = 0;
}

} // namespace analysis
} // namespace dc
