//===- analysis/IncrementalCycles.cpp - Online IDG cycle detection --------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/IncrementalCycles.h"

#include <algorithm>
#include <cassert>
#include <chrono>

namespace dc {
namespace analysis {

IncrementalCycleDetector::~IncrementalCycleDetector() {
  for (IcdGroup *G : Groups)
    delete G;
}

void IncrementalCycleDetector::lockMu() {
  if (Mu.tryLock())
    return;
  const auto Start = std::chrono::steady_clock::now();
  Mu.lock();
  const auto Waited = std::chrono::steady_clock::now() - Start;
  LockWaits.fetch_add(1, std::memory_order_relaxed);
  LockWaitNs.fetch_add(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Waited).count(),
      std::memory_order_relaxed);
}

void IncrementalCycleDetector::addNode(Transaction *Tx) {
  // Lock-free: new nodes are maximal (no edge can point at a transaction
  // that does not exist yet), and a relaxed fetch-add keeps the key above
  // everything a concurrent reorder could be permuting.
  Tx->IcdOrd = NextOrd.fetch_add(1, std::memory_order_relaxed);
}

void IncrementalCycleDetector::addChainEdge(Transaction *Prev,
                                            Transaction *Tx) {
  if (Prev == nullptr || Tx == nullptr || Prev == Tx)
    return;
  // Tx's key is fresh and maximal, so ord(Prev) < ord(Tx) holds no matter
  // what any concurrent reorder permutes — the edge is consistent by
  // construction and needs no lock at all. The release store (paired with
  // the searches' acquire loads) publishes Tx's key with the link.
  Tx->IcdChainPrev.store(Prev, std::memory_order_relaxed);
  Prev->IcdChainNext.store(Tx, std::memory_order_release);
  ChainEdges.fetch_add(1, std::memory_order_relaxed);
}

void IncrementalCycleDetector::registerGroup(IcdGroup *G) {
  G->RegIdx = Groups.size();
  Groups.push_back(G);
}

void IncrementalCycleDetector::unregisterGroup(IcdGroup *G) {
  const size_t I = G->RegIdx;
  Groups[I] = Groups.back();
  Groups[I]->RegIdx = I;
  Groups.pop_back();
}

void IncrementalCycleDetector::claimGroup(IcdGroup *G, ClaimList &Out) {
  G->Claimed = true;
  for (Transaction *M : G->Members)
    M->Pins.fetch_add(1, std::memory_order_relaxed);
  Claim C;
  C.Members = G->Members;
  Out.push_back(std::move(C));
}

void IncrementalCycleDetector::addEdge(Transaction *Src, Transaction *Dst,
                                       ClaimList &Out) {
  if (Src == nullptr || Dst == nullptr || Src == Dst)
    return;
  TimedGuard L(*this);
  ++NumEdges;
  if (sameVertex(Src, Dst))
    return; // Internal to an already-merged component: changes neither
            // reachability (searches expand whole groups) nor order, so
            // it is not even recorded — hot ping-pong pairs would
            // otherwise grow the merged component's adjacency forever.
  // Detector-private symmetric adjacency. Consecutive duplicates collapse:
  // repeated conflicts between one transaction pair are the common case,
  // and a duplicate edge changes neither reachability nor order.
  if (Src->IcdOut.empty() || Src->IcdOut.back() != Dst) {
    Src->IcdOut.push_back(Dst);
    Dst->IcdIn.push_back(Src);
  }
  IcdGroup *GS = Src->IcdG;
  IcdGroup *GD = Dst->IcdG;
  if (GS != nullptr && GS->Oversized) {
    absorbInto(GS, {Dst}, Out);
    return;
  }
  if (GD != nullptr && GD->Oversized) {
    absorbInto(GD, {Src}, Out);
    return;
  }
  if (ordOf(Src) < ordOf(Dst)) {
    ++NumFastEdges; // Order already consistent: the hot path.
    return;
  }
  insertInconsistent(Src, Dst, Out);
}

void IncrementalCycleDetector::insertInconsistent(Transaction *Src,
                                                  Transaction *Dst,
                                                  ClaimList &Out) {
  const uint64_t HiOrd = ordOf(Src);
  const uint64_t LoOrd = ordOf(Dst);
  const uint64_t FStamp = ++VisitClock;
  const uint64_t BStamp = ++VisitClock;

  // Forward search from Dst over vertices with keys ≤ ord(Src). Visits are
  // per condensation vertex (a group shares one stamp and one order key).
  std::vector<Transaction *> VF;    // Forward-visited (members included).
  std::vector<Transaction *> BOnly; // Backward-only.
  std::vector<Transaction *> MemberV; // F∩B: the new component's vertices.
  std::vector<Transaction *> Stack;

  bool Oversize = false;
  IcdGroup *Poison = nullptr; // Oversized group a search touched.
  stampOf(Dst) = FStamp;
  VF.push_back(Dst);
  Stack.push_back(Dst);
  while (!Stack.empty() && Poison == nullptr) {
    if (VF.size() > Opts.MaxRegion) {
      Oversize = true;
      break;
    }
    Transaction *V = Stack.back();
    Stack.pop_back();
    auto Visit = [&](Transaction *N) {
      if (N == nullptr || stampOf(N) == FStamp)
        return;
      if (N->IcdG != nullptr && N->IcdG->Oversized) {
        // Lazy poison contact (a chain link published after the region
        // was absorbed): abandon the search and absorb the new edge.
        Poison = N->IcdG;
        return;
      }
      if (ordOf(N) > HiOrd)
        return;
      stampOf(N) = FStamp;
      VF.push_back(N);
      Stack.push_back(N);
    };
    auto Expand = [&](Transaction *M) {
      for (Transaction *N : M->IcdOut)
        Visit(N);
      Visit(M->IcdChainNext.load(std::memory_order_acquire));
    };
    if (V->IcdG != nullptr)
      for (Transaction *M : V->IcdG->Members)
        Expand(M);
    else
      Expand(V);
  }

  // Backward search from Src over keys ≥ ord(Dst). A vertex already
  // carrying the forward stamp is in both frontiers — i.e. on the cycle
  // the new edge closes.
  if (!Oversize && Poison == nullptr) {
    Stack.clear();
    auto VisitB = [&](Transaction *N) {
      const bool WasF = stampOf(N) == FStamp;
      stampOf(N) = BStamp;
      (WasF ? MemberV : BOnly).push_back(N);
      Stack.push_back(N);
    };
    VisitB(Src);
    while (!Stack.empty() && Poison == nullptr) {
      if (VF.size() + BOnly.size() > Opts.MaxRegion) {
        Oversize = true;
        break;
      }
      Transaction *V = Stack.back();
      Stack.pop_back();
      auto Visit = [&](Transaction *N) {
        if (N == nullptr || stampOf(N) == BStamp)
          return;
        if (N->IcdG != nullptr && N->IcdG->Oversized) {
          Poison = N->IcdG;
          return;
        }
        if (ordOf(N) < LoOrd)
          return;
        VisitB(N);
      };
      auto Expand = [&](Transaction *M) {
        for (Transaction *N : M->IcdIn)
          Visit(N);
        Visit(M->IcdChainPrev.load(std::memory_order_acquire));
      };
      if (V->IcdG != nullptr)
        for (Transaction *M : V->IcdG->Members)
          Expand(M);
      else
        Expand(V);
    }
  }

  if (Poison != nullptr) {
    // Touching a poisoned region means the new edge connects to it:
    // absorb both endpoints (and their undirected closure) instead of
    // reordering. The stamps left behind are epoch-based garbage.
    absorbInto(Poison, {Src, Dst}, Out);
    return;
  }

  const size_t Region = VF.size() + BOnly.size();
  RegionMax = std::max<uint64_t>(RegionMax, Region);

  if (Oversize) {
    // The region is too dense to keep reordering: poison it. Everything
    // connected (in the undirected sense) to the new edge collapses into
    // one oversized group whose members are reported as Potential; the
    // stamps left behind are epoch-based and need no cleanup.
    IcdGroup *G = new IcdGroup;
    G->Oversized = true;
    G->Claimed = true;
    G->Ord = HiOrd; // Never consulted: searches skip oversized groups.
    registerGroup(G);
    absorbInto(G, {Src, Dst}, Out);
    return;
  }

  ++NumReorders;
  ReorderVisited += Region;
  if (ReorderHook)
    ReorderHook(Region);

  // Restore order consistency by permuting the region's own keys:
  // backward frontier gets the lowest keys, the merged component the next
  // one, the forward frontier the highest. Relative order within each
  // block is preserved, so every edge into, out of, or across the region
  // stays consistent (see the proof sketch in DESIGN.md §12).
  std::vector<uint64_t> Pool;
  Pool.reserve(Region);
  for (Transaction *V : VF)
    Pool.push_back(ordOf(V));
  for (Transaction *V : BOnly)
    Pool.push_back(ordOf(V));
  std::sort(Pool.begin(), Pool.end());

  const auto ByOrd = [this](Transaction *A, Transaction *B) {
    return ordOf(A) < ordOf(B);
  };
  std::sort(BOnly.begin(), BOnly.end(), ByOrd);
  std::vector<Transaction *> FOnly; // VF minus members: stamp still FStamp
  for (Transaction *V : VF)        // (members were restamped BStamp).
    if (stampOf(V) == FStamp)
      FOnly.push_back(V);
  std::sort(FOnly.begin(), FOnly.end(), ByOrd);

  size_t Slot = 0;
  for (Transaction *V : BOnly)
    setOrd(V, Pool[Slot++]);

  if (!MemberV.empty()) {
    // The edge closed a cycle: merge F∩B into one condensation vertex.
    IcdGroup *G = new IcdGroup;
    for (Transaction *V : MemberV) {
      if (IcdGroup *Old = V->IcdG) {
        for (Transaction *M : Old->Members) {
          M->IcdG = G;
          G->Members.push_back(M);
        }
        unregisterGroup(Old);
        delete Old;
      } else {
        V->IcdG = G;
        G->Members.push_back(V);
      }
    }
    for (Transaction *M : G->Members)
      if (!M->IcdRetired)
        ++G->Unretired;
    G->Ord = Pool[Slot]; // Between the backward and forward blocks.
    G->Epoch = BStamp;
    registerGroup(G);
    ++NumCycles;
    // The runtime's edges always target an unfinished (hence unretired)
    // transaction, so the claim waits for retire(); hand-built graphs may
    // close a cycle among finished nodes, in which case claim here.
    if (G->Unretired == 0)
      claimGroup(G, Out);
  }

  Slot = Pool.size() - FOnly.size();
  for (Transaction *V : FOnly)
    setOrd(V, Pool[Slot++]);
}

void IncrementalCycleDetector::absorbInto(
    IcdGroup *G, const std::vector<Transaction *> &Seeds, ClaimList &Out) {
  assert(G->Oversized && "absorption is the oversized-region valve");
  // Fresh doubles as the BFS worklist and the claim's member list: the
  // undirected closure of the seeds, minus what the group already holds.
  std::vector<Transaction *> Fresh;
  auto Absorb = [&](Transaction *N) {
    if (N->IcdG == G)
      return;
    if (IcdGroup *Old = N->IcdG) {
      // Members of another *oversized* group were already reported (and
      // pinned) when that group absorbed them: splice them in silently.
      const bool Report = !Old->Oversized;
      for (Transaction *M : Old->Members) {
        M->IcdG = G;
        G->Members.push_back(M);
        if (Report)
          Fresh.push_back(M);
      }
      unregisterGroup(Old);
      delete Old;
    } else {
      N->IcdG = G;
      G->Members.push_back(N);
      Fresh.push_back(N);
    }
  };
  for (Transaction *S : Seeds)
    Absorb(S);
  for (size_t I = 0; I < Fresh.size(); ++I) {
    Transaction *M = Fresh[I];
    for (Transaction *N : M->IcdOut)
      Absorb(N);
    for (Transaction *N : M->IcdIn)
      Absorb(N);
    if (Transaction *N = M->IcdChainNext.load(std::memory_order_acquire))
      Absorb(N);
    if (Transaction *N = M->IcdChainPrev.load(std::memory_order_acquire))
      Absorb(N);
  }
  if (Fresh.empty())
    return;
  ++CapDegrades;
  for (Transaction *M : Fresh)
    M->Pins.fetch_add(1, std::memory_order_relaxed);
  Claim C;
  C.Members = std::move(Fresh);
  C.Oversized = true;
  Out.push_back(std::move(C));
}

void IncrementalCycleDetector::retire(Transaction *Tx, ClaimList &Out) {
  TimedGuard L(*this);
  if (Tx->IcdRetired)
    return;
  Tx->IcdRetired = true;
  IcdGroup *G = Tx->IcdG;
  if (G != nullptr && !G->Claimed && G->Unretired > 0 &&
      --G->Unretired == 0)
    claimGroup(G, Out); // Last member to finish claims the component —
                        // the same instant a batched pass first could.
}

void IncrementalCycleDetector::removeNodes(
    const std::vector<Transaction *> &Doomed) {
  TimedGuard L(*this);
  for (Transaction *Tx : Doomed) {
    for (Transaction *N : Tx->IcdOut)
      if (N != Tx)
        N->IcdIn.eraseValue(Tx);
    for (Transaction *N : Tx->IcdIn)
      if (N != Tx)
        N->IcdOut.eraseValue(Tx);
    Tx->IcdOut.clear();
    Tx->IcdIn.clear();
    // Chain unlink. In the runtime a doomed node's chain neighbours are
    // doomed with it (the mark phase follows the same edges), so this is
    // defensive, like the vector erasures above.
    if (Transaction *N = Tx->IcdChainPrev.load(std::memory_order_relaxed))
      if (N->IcdChainNext.load(std::memory_order_relaxed) == Tx)
        N->IcdChainNext.store(nullptr, std::memory_order_relaxed);
    if (Transaction *N = Tx->IcdChainNext.load(std::memory_order_relaxed))
      if (N->IcdChainPrev.load(std::memory_order_relaxed) == Tx)
        N->IcdChainPrev.store(nullptr, std::memory_order_relaxed);
    Tx->IcdChainNext.store(nullptr, std::memory_order_relaxed);
    Tx->IcdChainPrev.store(nullptr, std::memory_order_relaxed);
    if (IcdGroup *G = Tx->IcdG) {
      // Only claimed (processed or poisoned) groups can lose members: an
      // unclaimed group has an unretired member rooting the whole
      // component through the mark phase.
      G->Members.erase(
          std::remove(G->Members.begin(), G->Members.end(), Tx),
          G->Members.end());
      if (!Tx->IcdRetired && G->Unretired > 0)
        --G->Unretired;
      Tx->IcdG = nullptr;
      if (G->Members.empty()) {
        unregisterGroup(G);
        delete G;
      }
    }
  }
}

void IncrementalCycleDetector::finalize(ClaimList &Out) {
  TimedGuard L(*this);
  for (size_t I = 0; I < Groups.size(); ++I) {
    IcdGroup *G = Groups[I];
    if (!G->Claimed) {
      ++FinalizeClaims;
      claimGroup(G, Out);
    }
  }
}

void IncrementalCycleDetector::flushStats(StatisticRegistry &Stats) {
  TimedGuard L(*this);
  // Chain links are the ultimate fast path: consistent by construction.
  const uint64_t Chain = ChainEdges.exchange(0, std::memory_order_relaxed);
  Stats.get("icd.inc_edges").add(NumEdges + Chain);
  Stats.get("icd.inc_fast_edges").add(NumFastEdges + Chain);
  Stats.get("icd.reorders").add(NumReorders);
  Stats.get("icd.reorder_visited").add(ReorderVisited);
  Stats.get("icd.region_max").updateMax(RegionMax);
  Stats.get("icd.cycles_incremental").add(NumCycles);
  Stats.get("icd.region_cap_degrades").add(CapDegrades);
  Stats.get("icd.finalize_claims").add(FinalizeClaims);
  Stats.get("icd.lock_waits")
      .add(LockWaits.exchange(0, std::memory_order_relaxed));
  Stats.get("icd.lock_wait_ns")
      .add(LockWaitNs.exchange(0, std::memory_order_relaxed));
  NumEdges = NumFastEdges = NumReorders = ReorderVisited = 0;
  RegionMax = NumCycles = CapDegrades = FinalizeClaims = 0;
}

} // namespace analysis
} // namespace dc
