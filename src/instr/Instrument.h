//===- instr/Instrument.h - Compile-time instrumentation passes -*- C++ -*-===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stands in for the paper's JVM dynamic compilers: given a source program
/// and an atomicity specification, produces an instrumented clone in which
///
///  * every method is compiled for its calling context — methods reachable
///    from both transactional and non-transactional contexts get two
///    variants ("the compilers compile two versions of non-atomic methods
///    called from both contexts", §4);
///  * atomic methods called from non-transactional context start a regular
///    transaction (Method::StartsTransaction);
///  * accesses and synchronization operations carry barrier/log flags for
///    the selected checker (Octet barriers for DoubleChecker, Velodrome
///    barriers for the baseline);
///  * array element accesses are instrumented only on request (the default
///    configuration omits them, like the paper's);
///  * in multi-run mode's second run, only methods named by the first run's
///    StaticTransactionInfo start (instrumented) transactions, and
///    non-transactional accesses are instrumented iff the first run saw a
///    unary transaction in a cycle.
///
/// Compiled method ids 0..N-1 coincide with the source program's methods
/// (these are the non-transactional-context variants); transactional-
/// context clones are appended with OriginalId pointing back.
///
//===----------------------------------------------------------------------===//

#ifndef DC_INSTR_INSTRUMENT_H
#define DC_INSTR_INSTRUMENT_H

#include <set>
#include <string>

#include "analysis/StaticInfo.h"
#include "ir/Ir.h"

namespace dc {
namespace instr {

/// Which analysis the inserted barriers feed.
enum class CheckerKind : uint8_t {
  None,      ///< Transaction demarcation only (no barriers, no logs).
  Octet,     ///< DoubleChecker: Octet barriers (+ optional logging).
  Velodrome, ///< Velodrome metadata barriers.
};

struct InstrumentationOptions {
  CheckerKind Checker = CheckerKind::Octet;
  /// Add IF_LogAccess so ICD records read/write logs (single-run mode and
  /// the second run of multi-run mode).
  bool LogAccesses = true;
  /// Instrument array element accesses (§5.4 ablation; default off, as in
  /// the paper's main experiments).
  bool InstrumentArrays = false;
  /// Second run of multi-run mode: restrict monitored transactions to the
  /// methods named here; instrument non-transactional accesses iff
  /// AnyUnary. Null = instrument everything (single-run / first-run).
  const analysis::StaticTransactionInfo *Selective = nullptr;
  /// Ablation (§5.3): always instrument non-transactional accesses in the
  /// second run, ignoring Selective->AnyUnary.
  bool ForceInstrumentUnary = false;
};

/// Compiles \p Source against \p Spec (the set of methods expected to be
/// atomic, given as a predicate over method names via the excluded set:
/// a method is atomic iff its name is NOT in \p ExcludedMethods).
ir::Program compile(const ir::Program &Source,
                    const std::set<std::string> &ExcludedMethods,
                    const InstrumentationOptions &Opts);

} // namespace instr
} // namespace dc

#endif // DC_INSTR_INSTRUMENT_H
