//===- instr/Instrument.cpp -----------------------------------------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "instr/Instrument.h"

#include <cassert>
#include <map>

#include "ir/Verifier.h"

using namespace dc;
using namespace dc::instr;
using namespace dc::ir;

namespace {

/// Compilation context of a method body.
enum class Ctx : uint8_t { NonTrans, Trans };

class Compiler {
public:
  Compiler(const Program &Source, const std::set<std::string> &Excluded,
           const InstrumentationOptions &Opts)
      : Source(Source), Excluded(Excluded), Opts(Opts) {}

  Program run() {
    Out.Name = Source.Name;
    Out.Seed = Source.Seed;
    Out.Pools = Source.Pools;
    // Non-transactional-context variants keep the source ids/names; bodies
    // are filled in below (forward calls may reference not-yet-compiled
    // methods, so allocate all headers first).
    Out.Methods.resize(Source.Methods.size());
    for (const Method &M : Source.Methods) {
      Method &NewM = Out.Methods[M.Id];
      NewM.Name = M.Name;
      NewM.Id = M.Id;
      NewM.Atomic = M.Atomic;
    }
    for (const Method &M : Source.Methods)
      compileVariant(M.Id, Ctx::NonTrans);
    Out.ThreadEntries = Source.ThreadEntries; // N variants share source ids.
    Out.ThreadSyncFlags = accessFlags(Ctx::NonTrans);
    assert(verify(Out).empty() && "instrumented program must verify");
    return std::move(Out);
  }

private:
  bool isAtomic(const Method &M) const {
    return Excluded.find(M.Name) == Excluded.end();
  }

  /// True if an atomic method is monitored (starts an instrumented regular
  /// transaction). With selective instrumentation only first-run-identified
  /// methods are.
  bool isMonitored(const Method &M) const {
    if (!isAtomic(M))
      return false;
    if (Opts.Selective == nullptr)
      return true;
    return Opts.Selective->MethodNames.count(M.Name) != 0;
  }

  uint8_t barrierFlag() const {
    switch (Opts.Checker) {
    case CheckerKind::None:
      return IF_None;
    case CheckerKind::Octet:
      return IF_OctetBarrier;
    case CheckerKind::Velodrome:
      return IF_VelodromeBarrier;
    }
    return IF_None;
  }

  /// Flags for an access or sync op compiled in \p C.
  uint8_t accessFlags(Ctx C) const {
    uint8_t Flags =
        barrierFlag() | (Opts.LogAccesses ? IF_LogAccess : IF_None);
    if (Flags == IF_LogAccess)
      Flags = IF_None; // Logging without a checker is meaningless.
    if (C == Ctx::Trans)
      return Flags;
    // Non-transactional context: with selective instrumentation, unary
    // accesses are instrumented only if the first run saw a unary
    // transaction in a cycle (or the ablation forces it).
    if (Opts.Selective != nullptr && !Opts.Selective->AnyUnary &&
        !Opts.ForceInstrumentUnary)
      return IF_None;
    return Flags;
  }

  /// Returns the compiled method id for (SourceId, C), creating it on
  /// demand. NonTrans variants reuse the source id; Trans variants are
  /// appended clones.
  MethodId compileVariant(MethodId SourceId, Ctx C) {
    auto Key = std::make_pair(SourceId, C);
    auto It = Compiled.find(Key);
    if (It != Compiled.end())
      return It->second;

    const Method &Src = Source.Methods[SourceId];
    MethodId NewId;
    if (C == Ctx::NonTrans) {
      NewId = SourceId;
    } else {
      NewId = static_cast<MethodId>(Out.Methods.size());
      Method Clone;
      Clone.Name = Src.Name + "$t";
      Clone.Id = NewId;
      Clone.Atomic = Src.Atomic;
      Clone.OriginalId = SourceId;
      Out.Methods.push_back(std::move(Clone));
    }
    Compiled.emplace(Key, NewId);

    // An atomic, monitored method entered from non-transactional context
    // starts a regular transaction; its body compiles in Trans context.
    bool StartsTx = C == Ctx::NonTrans && isMonitored(Src);
    Ctx BodyCtx = (C == Ctx::Trans || StartsTx) ? Ctx::Trans : Ctx::NonTrans;

    std::vector<Instr> Body = compileBlock(Src.Body, BodyCtx);
    Method &NewM = Out.Methods[NewId];
    NewM.StartsTransaction = StartsTx;
    NewM.TransactionalContext = BodyCtx == Ctx::Trans;
    NewM.Body = std::move(Body);
    return NewId;
  }

  std::vector<Instr> compileBlock(const std::vector<Instr> &Block, Ctx C) {
    std::vector<Instr> Result;
    Result.reserve(Block.size());
    for (const Instr &I : Block)
      Result.push_back(compileInstr(I, C));
    return Result;
  }

  Instr compileInstr(const Instr &I, Ctx C) {
    Instr NewI = I;
    NewI.Body.clear();
    switch (I.Op) {
    case Opcode::Read:
    case Opcode::Write:
      NewI.Flags = accessFlags(C);
      break;
    case Opcode::ReadElem:
    case Opcode::WriteElem:
      NewI.Flags =
          Opts.InstrumentArrays ? accessFlags(C) : uint8_t(IF_None);
      break;
    case Opcode::Acquire:
    case Opcode::Release:
    case Opcode::Wait:
    case Opcode::Notify:
    case Opcode::NotifyAll:
      NewI.Flags = accessFlags(C);
      break;
    case Opcode::Call:
      NewI.Callee = compileVariant(I.Callee, C);
      break;
    case Opcode::Fork:
    case Opcode::Join:
    case Opcode::Work:
      break;
    case Opcode::Loop:
      NewI.Body = compileBlock(I.Body, C);
      break;
    }
    return NewI;
  }

  const Program &Source;
  const std::set<std::string> &Excluded;
  const InstrumentationOptions &Opts;
  Program Out;
  std::map<std::pair<MethodId, Ctx>, MethodId> Compiled;
};

} // namespace

Program instr::compile(const Program &Source,
                       const std::set<std::string> &ExcludedMethods,
                       const InstrumentationOptions &Opts) {
  return Compiler(Source, ExcludedMethods, Opts).run();
}
